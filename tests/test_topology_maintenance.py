"""Tests for the topology-maintenance protocol (E4) — Theorem 1's
eventual consistency, convergence speeds, and the §3 deadlock example."""

from __future__ import annotations

import pytest

from repro.core import (
    TopologyMaintenance,
    attach_topology_maintenance,
    converge_by_rounds,
    is_converged,
)
from repro.network import Network, topologies
from repro.sim import FixedDelays, NotConvergedError, RandomDelays


def fresh_net(g, **kwargs):
    kwargs.setdefault("delays", FixedDelays(0.0, 1.0))
    return Network(g, **kwargs)


@pytest.mark.parametrize("strategy", ["bpaths", "flood", "dfs"])
@pytest.mark.parametrize("scope", ["local", "full"])
def test_cold_start_convergence(strategy, scope):
    net = fresh_net(topologies.random_connected(20, 0.2, seed=5))
    attach_topology_maintenance(net, strategy=strategy, scope=scope)
    result = converge_by_rounds(net, max_rounds=40)
    assert result.converged
    assert is_converged(net)


def test_layered_strategy_converges_with_big_dmax():
    net = fresh_net(topologies.grid(4, 4), dmax=10**6)
    attach_topology_maintenance(net, strategy="layered", scope="full")
    assert converge_by_rounds(net, max_rounds=20).converged


def test_full_scope_converges_faster_than_local():
    g = topologies.line(33)  # diameter 32: the gap is large
    net_local = fresh_net(g)
    attach_topology_maintenance(net_local, strategy="bpaths", scope="local")
    r_local = converge_by_rounds(net_local, max_rounds=64)

    net_full = fresh_net(g)
    attach_topology_maintenance(net_full, strategy="bpaths", scope="full")
    r_full = converge_by_rounds(net_full, max_rounds=64)

    # local ~ O(d) rounds, full ~ O(log d) rounds.
    assert r_local.rounds >= 16
    assert r_full.rounds <= 8
    assert r_full.rounds < r_local.rounds


def test_bpaths_costs_fewer_system_calls_than_flooding():
    g = topologies.random_connected(30, 0.3, seed=1)  # dense: m >> n
    net_b = fresh_net(g)
    attach_topology_maintenance(net_b, strategy="bpaths", scope="full")
    r_b = converge_by_rounds(net_b, max_rounds=30)

    net_f = fresh_net(g)
    attach_topology_maintenance(net_f, strategy="flood", scope="full")
    r_f = converge_by_rounds(net_f, max_rounds=30)

    calls_per_round_b = r_b.system_calls / r_b.rounds
    calls_per_round_f = r_f.system_calls / r_f.rounds
    assert calls_per_round_b < calls_per_round_f


def test_reconvergence_after_link_failures():
    net = fresh_net(topologies.grid(5, 5))
    attach_topology_maintenance(net, strategy="bpaths", scope="full")
    assert converge_by_rounds(net, max_rounds=20).converged
    net.fail_link(0, 1)
    net.fail_link(12, 13)
    net.run_to_quiescence()
    assert not is_converged(net)
    assert converge_by_rounds(net, max_rounds=20).converged


def test_reconvergence_after_restore():
    net = fresh_net(topologies.ring(8))
    attach_topology_maintenance(net, strategy="bpaths", scope="full")
    converge_by_rounds(net)
    net.fail_link(0, 1)
    converge_by_rounds(net)
    net.restore_link(0, 1)
    result = converge_by_rounds(net)
    assert result.converged
    assert is_converged(net)


def test_node_failure_and_component_consistency():
    # After a cut vertex dies, each fragment must converge on itself.
    net = fresh_net(topologies.star(6))
    attach_topology_maintenance(net, strategy="bpaths", scope="full")
    converge_by_rounds(net)
    net.fail_node(0)  # all leaves become singletons
    net.run_to_quiescence()
    assert converge_by_rounds(net, max_rounds=5).converged


def test_periodic_mode_converges_without_driver():
    net = fresh_net(topologies.random_connected(15, 0.25, seed=2))
    attach_topology_maintenance(net, strategy="bpaths", scope="full", period=50.0)
    net.start()
    net.run(until=600.0)
    assert is_converged(net)


def test_broadcast_on_change_reacts_to_failures():
    net = fresh_net(topologies.grid(3, 3))
    attach_topology_maintenance(
        net, strategy="flood", scope="full", broadcast_on_change=True
    )
    converge_by_rounds(net)
    net.fail_link(0, 1)
    net.run_to_quiescence()  # the link event itself triggers broadcasts
    assert is_converged(net)


def test_sixnode_example_dfs_deadlocks_bpaths_converges():
    """The Section 3 example, end to end."""

    def adversarial(node, children):
        # u prefers v, v prefers w, w prefers u (cyclic preference).
        return sorted(children, key=lambda c: (c - node) % 6)

    def run(strategy, child_order=None):
        net = fresh_net(topologies.two_connected_example())
        attach_topology_maintenance(
            net,
            strategy=strategy,
            scope="local",
            dfs_child_order=child_order,
        )
        converge_by_rounds(net)  # learn the healthy topology first
        for edge in [(0, 3), (1, 4), (2, 5)]:
            net.fail_link(*edge)
        net.run_to_quiescence()
        return converge_by_rounds(net, max_rounds=25, require=False)

    dfs = run("dfs", adversarial)
    assert not dfs.converged  # the paper's deadlock

    bpaths = run("bpaths")
    assert bpaths.converged
    assert bpaths.rounds <= 3  # the one-way broadcast breaks the cycle


def test_convergence_driver_raises_when_required():
    def adversarial(node, children):
        return sorted(children, key=lambda c: (c - node) % 6)

    net = fresh_net(topologies.two_connected_example())
    attach_topology_maintenance(
        net, strategy="dfs", scope="local", dfs_child_order=adversarial
    )
    converge_by_rounds(net)
    for edge in [(0, 3), (1, 4), (2, 5)]:
        net.fail_link(*edge)
    net.run_to_quiescence()
    with pytest.raises(NotConvergedError):
        converge_by_rounds(net, max_rounds=10)


def test_converges_under_random_delays():
    net = Network(
        topologies.random_connected(15, 0.25, seed=4),
        delays=RandomDelays(hardware=0.2, software=1.0, seed=9),
    )
    attach_topology_maintenance(net, strategy="bpaths", scope="full")
    assert converge_by_rounds(net, max_rounds=40).converged


def test_view_edges_respects_one_sided_failure_reports():
    # u knows the link died; v's stale record says active: the merged
    # view must treat the link as down (any-failure-wins rule).
    net = fresh_net(topologies.line(3))
    attach_topology_maintenance(net, strategy="bpaths", scope="full")
    converge_by_rounds(net)
    proto0 = net.node(0).protocol
    assert ((0, 1) in proto0.view_edges()) or ((1, 0) in proto0.view_edges())
    net.fail_link(0, 1)
    net.run_to_quiescence()
    # Node 0's own row now reports the failure; node 1's old record in
    # 0's db still claims active — the view must drop the edge.
    edges = proto0.view_edges()
    assert (0, 1) not in edges and (1, 0) not in edges


def test_invalid_strategy_and_scope_rejected():
    net = fresh_net(topologies.line(2))
    with pytest.raises(ValueError):
        attach_topology_maintenance(net, strategy="bogus")
    net2 = fresh_net(topologies.line(2))
    with pytest.raises(ValueError):
        attach_topology_maintenance(net2, scope="bogus")
