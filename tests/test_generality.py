"""Generality tests: non-integer node IDs across the whole stack.

Nothing in the model requires integer node identities.  These tests
relabel graphs with strings and run every major protocol end to end —
catching any accidental reliance on integer ordering or arithmetic.
(The ring baselines are exempt: they define ring geometry *by* integer
ids, and say so.)
"""

from __future__ import annotations

import networkx as nx
import pytest

from repro.core import (
    BranchingPathsBroadcast,
    LeaderElection,
    attach_topology_maintenance,
    converge_by_rounds,
    run_group_multicast,
    run_standalone_broadcast,
)
from repro.network import Network, topologies
from repro.sim import FixedDelays


def string_labelled(g: nx.Graph) -> nx.Graph:
    mapping = {node: f"host-{node:02d}" for node in g.nodes}
    return nx.relabel_nodes(g, mapping)


@pytest.fixture
def named_net():
    g = string_labelled(topologies.random_connected(18, 0.25, seed=6))
    return Network(g, delays=FixedDelays(0.0, 1.0))


def test_broadcast_with_string_ids(named_net):
    adjacency = named_net.adjacency()
    run = run_standalone_broadcast(
        named_net,
        lambda api: BranchingPathsBroadcast(
            api, root="host-00", adjacency=adjacency, ids=named_net.id_lookup
        ),
        "host-00",
    )
    assert run.coverage == named_net.n
    assert run.system_calls == named_net.n - 1


def test_election_with_string_ids(named_net):
    named_net.attach(lambda api: LeaderElection(api))
    named_net.start()
    named_net.run_to_quiescence(max_events=2_000_000)
    flags = named_net.outputs_for_key("is_leader")
    winners = [v for v, f in flags.items() if f]
    assert len(winners) == 1
    assert winners[0].startswith("host-")
    assert set(named_net.outputs_for_key("leader")) == set(named_net.nodes)


def test_topology_maintenance_with_string_ids(named_net):
    attach_topology_maintenance(named_net, strategy="bpaths", scope="full")
    assert converge_by_rounds(named_net, max_rounds=30).converged


def test_group_multicast_with_string_ids(named_net):
    run = run_group_multicast(named_net, "host-00", bodies=["cfg"])
    assert run.coverage == named_net.n - 1


def test_mixed_id_types_are_ordered_by_repr():
    # Even a mix of ints and strings must not crash the deterministic
    # orderings (they sort by repr everywhere).
    g = nx.Graph()
    g.add_edges_from([(0, "a"), ("a", 1), (1, "b"), ("b", 0)])
    net = Network(g, delays=FixedDelays(0.0, 1.0))
    net.attach(lambda api: LeaderElection(api))
    net.start()
    net.run_to_quiescence(max_events=500_000)
    flags = net.outputs_for_key("is_leader")
    assert sum(1 for f in flags.values() if f) == 1
