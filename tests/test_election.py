"""Tests for the Section 4 leader election (E5) and its baselines (E6)."""

from __future__ import annotations

import pytest

from repro.core import ChangRoberts, HirschbergSinclair, LeaderElection
from repro.network import Network, topologies
from repro.sim import FixedDelays, RandomDelays


def run_election(g, factory, starters=None, *, delays=None, max_events=2_000_000):
    net = Network(g, delays=delays or FixedDelays(0.0, 1.0))
    net.attach(factory)
    net.start(starters)
    net.run_to_quiescence(max_events=max_events)
    return net


def assert_one_leader_everyone_knows(net):
    flags = net.outputs_for_key("is_leader")
    winners = [node for node, is_leader in flags.items() if is_leader]
    assert len(winners) == 1, f"winners: {winners}"
    known = net.outputs_for_key("leader")
    assert set(known) == set(net.nodes)  # every node learned the result
    assert set(known.values()) == {winners[0]}
    return winners[0]


def tour_return_calls(net):
    snap = net.metrics.snapshot()
    return snap.system_calls_by_kind.get("tour", 0) + snap.system_calls_by_kind.get(
        "return", 0
    )


GRAPHS = [
    topologies.line(2),
    topologies.line(9),
    topologies.ring(12),
    topologies.star(10),
    topologies.complete(12),
    topologies.grid(4, 5),
    topologies.complete_binary_tree(4),
    topologies.barbell(4, 3),
    topologies.random_connected(30, 0.12, seed=1),
    topologies.random_connected(60, 0.07, seed=2),
]


@pytest.mark.parametrize("g", GRAPHS, ids=lambda g: f"n{g.number_of_nodes()}m{g.number_of_edges()}")
def test_exactly_one_leader_all_starters(g):
    net = run_election(g, lambda api: LeaderElection(api))
    assert_one_leader_everyone_knows(net)


@pytest.mark.parametrize("g", GRAPHS, ids=lambda g: f"n{g.number_of_nodes()}m{g.number_of_edges()}")
def test_theorem5_tour_return_bound(g):
    net = run_election(g, lambda api: LeaderElection(api))
    assert tour_return_calls(net) <= 6 * net.n


def test_single_initiator_still_elects():
    g = topologies.random_connected(25, 0.15, seed=3)
    net = run_election(g, lambda api: LeaderElection(api), starters=[7])
    assert_one_leader_everyone_knows(net)


def test_two_initiators():
    g = topologies.grid(4, 4)
    net = run_election(g, lambda api: LeaderElection(api), starters=[0, 15])
    assert_one_leader_everyone_knows(net)


def test_single_node_network_elects_itself():
    net = run_election(topologies.line(1), lambda api: LeaderElection(api))
    flags = net.outputs_for_key("is_leader")
    assert flags == {0: True}


def test_no_announce_mode():
    g = topologies.ring(8)
    net = run_election(g, lambda api: LeaderElection(api, announce=False))
    flags = net.outputs_for_key("is_leader")
    winners = [node for node, v in flags.items() if v]
    assert len(winners) == 1
    # Without the announcement only the winner knows.
    assert set(net.outputs_for_key("leader")) == {winners[0]}


@pytest.mark.parametrize("seed", range(6))
def test_correct_under_random_delays(seed):
    g = topologies.random_connected(22, 0.18, seed=seed)
    net = run_election(
        g,
        lambda api: LeaderElection(api),
        delays=RandomDelays(hardware=0.3, software=1.0, seed=seed),
    )
    assert_one_leader_everyone_knows(net)
    assert tour_return_calls(net) <= 6 * net.n


@pytest.mark.parametrize("seed", range(4))
def test_staggered_starts(seed):
    # Nodes wake at different times; late nodes are drafted by messages.
    g = topologies.random_connected(18, 0.2, seed=seed + 10)
    net = Network(g, delays=FixedDelays(0.0, 1.0))
    net.attach(lambda api: LeaderElection(api))
    for index, node in enumerate(sorted(net.nodes)):
        if index % 3 == 0:
            net.start([node], at=float(index))
    net.run_to_quiescence(max_events=2_000_000)
    assert_one_leader_everyone_knows(net)


def test_total_system_calls_linear():
    # Including starts, nudges and the announcement, the total stays
    # within a small linear envelope (the 6n of Theorem 5 plus n starts,
    # n announce deliveries and the occasional nudge).
    for n in (16, 64, 128):
        g = topologies.random_connected(n, min(0.3, 8.0 / n), seed=n)
        net = run_election(g, lambda api: LeaderElection(api))
        assert net.metrics.system_calls <= 9 * n


def test_election_hops_stay_linear_in_dmax():
    # Every direct message's header obeys the default dmax = 2n + 2.
    g = topologies.random_connected(40, 0.1, seed=5)
    net = run_election(g, lambda api: LeaderElection(api))
    assert_one_leader_everyone_knows(net)  # no PathTooLongError en route


# ----------------------------------------------------------------------
# Baselines (E6)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("n", [3, 8, 17, 32])
def test_chang_roberts_elects_max_id(n):
    net = run_election(topologies.ring(n), lambda api: ChangRoberts(api))
    winner = assert_one_leader_everyone_knows(net)
    assert winner == n - 1


@pytest.mark.parametrize("n", [3, 8, 17, 32])
def test_hirschberg_sinclair_elects_max_id(n):
    net = run_election(topologies.ring(n), lambda api: HirschbergSinclair(api))
    winner = assert_one_leader_everyone_knows(net)
    assert winner == n - 1


def test_hs_system_calls_n_log_n():
    # HS is Θ(n log n) in the new measure: every hop is a system call.
    import math

    for n in (16, 64):
        net = run_election(topologies.ring(n), lambda api: HirschbergSinclair(api))
        calls = net.metrics.system_calls
        assert calls > 2 * n  # clearly superlinear territory
        assert calls <= 12 * n * math.log2(n)


def test_new_election_beats_baselines_asymptotically_on_rings():
    # System calls: new algorithm grows linearly, HS as n log n; by
    # n = 128 the gap is unambiguous.
    n = 128
    net_new = run_election(topologies.ring(n), lambda api: LeaderElection(api))
    net_hs = run_election(topologies.ring(n), lambda api: HirschbergSinclair(api))
    assert net_new.metrics.system_calls < net_hs.metrics.system_calls


def test_chang_roberts_single_starter():
    net = run_election(topologies.ring(9), lambda api: ChangRoberts(api), starters=[4])
    assert_one_leader_everyone_knows(net)


@pytest.mark.parametrize("policy", ["min", "max", "random"])
def test_theorem5_holds_for_any_tour_policy(policy):
    # The paper's tour target is arbitrary: the bound must not depend
    # on the selection policy.
    for seed in (1, 2):
        g = topologies.random_connected(40, 0.12, seed=seed)
        net = run_election(
            g,
            lambda api: LeaderElection(api, tour_policy=policy, tour_seed=seed),
        )
        assert_one_leader_everyone_knows(net)
        assert tour_return_calls(net) <= 6 * net.n


def test_unknown_tour_policy_rejected():
    net = Network(topologies.line(2), delays=FixedDelays(0.0, 1.0))
    net.attach(lambda api: LeaderElection(api, tour_policy="bogus"))
    net.start()
    with pytest.raises(ValueError, match="tour policy"):
        net.run_to_quiescence()


def test_phase_cap_ablation_correct_and_costlier():
    # Without rule (1)'s budget the election stays correct (chains are
    # finite), but the adversarial staggered scenario pays more.
    def staggered(cap):
        net = Network(topologies.complete(64), delays=FixedDelays(0.0, 1.0))
        net.attach(lambda api: LeaderElection(api, phase_cap=cap))
        net.start(list(range(32)), at=0.0)
        net.run_to_quiescence(max_events=5_000_000)
        net.start(list(range(32, 64)), at=net.scheduler.now)
        net.run_to_quiescence(max_events=5_000_000)
        assert_one_leader_everyone_knows(net)
        return tour_return_calls(net)

    capped = staggered(True)
    uncapped = staggered(False)
    assert capped <= 6 * 64
    assert uncapped > capped


def test_announcement_rides_the_inout_tree():
    # The winner's announcement reuses the branching-paths broadcast
    # over its INOUT tree: n-1 'announce' receipts, each one tree hop.
    g = topologies.random_connected(24, 0.2, seed=12)
    net = run_election(g, lambda api: LeaderElection(api))
    assert_one_leader_everyone_knows(net)
    snap = net.metrics.snapshot()
    assert snap.system_calls_by_kind.get("announce", 0) == net.n - 1
