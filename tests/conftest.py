"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import random
from typing import Any, Iterable, Mapping

import networkx as nx
import pytest

from repro.network import Network, Protocol, topologies
from repro.network.spanning import Tree, tree_from_parent
from repro.sim import FixedDelays


def limiting_net(graph: nx.Graph, **kwargs: Any) -> Network:
    """A network under the Sections 3–4 limiting model (C=0, P=1)."""
    kwargs.setdefault("delays", FixedDelays(0.0, 1.0))
    return Network(graph, **kwargs)


class Recorder(Protocol):
    """Minimal protocol that records everything it is handed."""

    def __init__(self, api) -> None:
        super().__init__(api)
        self.started: list[Any] = []
        self.packets: list[Any] = []
        self.timers: list[tuple[str, Any]] = []
        self.link_events: list[Any] = []

    def on_start(self, payload):
        self.started.append(payload)

    def on_packet(self, packet):
        self.packets.append(packet)

    def on_timer(self, tag, payload):
        self.timers.append((tag, payload))

    def on_link_change(self, info):
        self.link_events.append(info)


def attach_recorders(net: Network) -> dict[Any, Recorder]:
    """Attach a Recorder to every node; returns them keyed by node id."""
    recorders: dict[Any, Recorder] = {}

    def factory(api):
        recorder = Recorder(api)
        recorders[api.node_id] = recorder
        return recorder

    net.attach(factory)
    return recorders


def random_tree(n: int, seed: int) -> Tree:
    """A uniform-ish random rooted tree on nodes 0..n-1 (root 0).

    Built by attaching node i to a random earlier node — every labelled
    rooted tree shape is reachable.
    """
    rng = random.Random(seed)
    parent: dict[int, int | None] = {0: None}
    for i in range(1, n):
        parent[i] = rng.randrange(i)
    return tree_from_parent(0, parent)


def tree_to_graph(tree: Tree) -> nx.Graph:
    """The underlying undirected graph of a rooted tree."""
    g = nx.Graph()
    g.add_nodes_from(tree.parent)
    g.add_edges_from(tree.edges())
    return g


def graph_adjacency(graph: nx.Graph) -> Mapping[Any, tuple[Any, ...]]:
    """Deterministic adjacency mapping of a networkx graph."""
    return {
        node: tuple(sorted(graph.neighbors(node), key=repr))
        for node in sorted(graph.nodes, key=repr)
    }


@pytest.fixture
def small_graphs() -> list[nx.Graph]:
    """A spread of small topologies used by several protocol tests."""
    return [
        topologies.line(2),
        topologies.line(7),
        topologies.ring(5),
        topologies.star(6),
        topologies.complete(5),
        topologies.grid(3, 3),
        topologies.complete_binary_tree(3),
        topologies.random_connected(12, 0.3, seed=4),
    ]
