"""Perf-counter attribution: correctness, determinism, aggregation.

Three properties are load-bearing:

1. **Attribution is exact** — counters equal the independent totals the
   metrics layer keeps (hops, system calls, events processed), so a
   perf breakdown can be trusted against the gated numbers.
2. **Observation never perturbs** — the golden-equivalence scenarios
   produce byte-identical documents with counters globally enabled,
   and BENCH metrics blocks match with perf on vs off.
3. **Aggregation is lossless** — per-task registries collected by
   campaign workers merge into the same totals regardless of sharding
   (fixed histogram bounds make the merge bin-exact).
"""

from __future__ import annotations

import json
import time

import pytest

from repro.core import FloodingBroadcast, run_standalone_broadcast
from repro.exec.engine import run_campaign
from repro.exec.task import TaskSpec
from repro.network.builder import from_spec
from repro.obs import (
    CampaignManifest,
    Histogram,
    PerfCounters,
    RunManifest,
    SamplingProfiler,
    merge_perf_dicts,
)
from repro.obs.bench import run_benchmark
from repro.sim import FixedDelays

from test_hotpath_equivalence import GOLDEN_PATH, SCENARIOS


def _flood_net(spec: str = "random:16,3"):
    return from_spec(spec, delays=FixedDelays(0.5, 1.0))


def _run_flood(net) -> None:
    run_standalone_broadcast(net, lambda api: FloodingBroadcast(api, root=0), 0)


# ----------------------------------------------------------------------
# Histogram merge / round-trip (satellite)
# ----------------------------------------------------------------------
def test_histogram_merge_sums_everything():
    a = Histogram([1.0, 10.0, 100.0])
    b = Histogram([1.0, 10.0, 100.0])
    for v in (0.5, 5.0, 50.0):
        a.add(v)
    for v in (2.0, 500.0):
        b.add(v)
    out = a.merge(b)
    assert out is a
    assert a.count == 5
    assert a.total == pytest.approx(557.5)
    assert a.minimum == 0.5 and a.maximum == 500.0
    assert sum(a.counts) == 5


def test_histogram_merge_mismatched_bounds_raises():
    a = Histogram([1.0, 10.0])
    b = Histogram([1.0, 10.0, 100.0])
    with pytest.raises(ValueError, match="different bounds"):
        a.merge(b)


def test_histogram_empty_merge_is_identity():
    a = Histogram([1.0, 10.0])
    for v in (0.2, 3.0, 99.0):
        a.add(v)
    before = a.to_dict()
    a.merge(Histogram([1.0, 10.0]))
    assert a.to_dict() == before
    # ...and merging *into* an empty one reproduces the source.
    empty = Histogram([1.0, 10.0])
    empty.merge(a)
    assert empty.to_dict() == before


def test_histogram_dict_round_trip():
    a = Histogram.geometric(0.5, 1000.0, 6)
    for v in (0.1, 0.7, 30.0, 5000.0):
        a.add(v)
    data = json.loads(json.dumps(a.to_dict()))
    back = Histogram.from_dict(data)
    assert back.to_dict() == a.to_dict()
    assert back.quantile(0.5) == a.quantile(0.5)


def test_histogram_from_dict_bad_counts_raises():
    data = Histogram([1.0, 2.0]).to_dict()
    data["counts"] = [0, 0]  # bounds imply 3 bins
    with pytest.raises(ValueError, match="bins"):
        Histogram.from_dict(data)


# ----------------------------------------------------------------------
# Counter attribution
# ----------------------------------------------------------------------
def test_counters_match_metrics_layer():
    net = _flood_net()
    counters = PerfCounters().install(net)
    _run_flood(net)
    snap = net.metrics.snapshot()
    assert counters.sched_pop == net.scheduler.events_processed
    assert counters.ss_hops == snap.hops
    assert counters.ncu_jobs == snap.system_calls
    assert counters.sched_push >= counters.sched_pop
    assert counters.handler_us.count == counters.ncu_jobs
    assert counters.ncu_handler_s > 0.0
    assert counters.sched_run_s > 0.0


def test_counters_count_trace_emission():
    net = from_spec("ring:8", delays=FixedDelays(0.5, 1.0), trace=True)
    counters = PerfCounters().install(net)
    _run_flood(net)
    assert counters.trace_records == len(net.trace) > 0


def test_install_and_uninstall_are_instance_scoped():
    net = _flood_net("ring:8")
    other = _flood_net("ring:8")
    counters = PerfCounters().install(net)
    _run_flood(other)  # not instrumented
    assert counters.sched_pop == 0
    _run_flood(net)
    assert counters.sched_pop > 0
    counters.uninstall(net)
    before = counters.sched_pop
    _run_flood(from_spec("ring:8", delays=FixedDelays(0.5, 1.0)))
    assert counters.sched_pop == before
    # Class attributes were never touched.
    assert type(net.scheduler).perf is None


def test_global_activation_captures_networks_built_later():
    counters = PerfCounters()
    with counters:
        net = _flood_net("ring:8")
        _run_flood(net)
        net2 = _flood_net("grid:3,3")
        _run_flood(net2)
    total = counters.sched_pop
    assert total == net.scheduler.events_processed + net2.scheduler.events_processed
    # Deactivated: later runs are invisible.
    _run_flood(_flood_net("ring:8"))
    assert counters.sched_pop == total


def test_events_per_sec_meter_rolls():
    net = _flood_net()
    counters = PerfCounters().install(net)
    _run_flood(net)
    rate = counters.events_per_sec()
    assert rate > 0.0
    # A tiny window after going idle decays toward zero.
    time.sleep(0.01)
    assert counters.events_per_sec(window=0.005) == 0.0


def test_alloc_snapshot_requires_tracking():
    counters = PerfCounters()
    with pytest.raises(RuntimeError, match="tracking is off"):
        counters.alloc_snapshot()
    counters.start_alloc_tracking()
    try:
        payload = [list(range(100)) for _ in range(50)]
        top = counters.alloc_snapshot(top=5)
    finally:
        counters.stop_alloc_tracking()
    assert payload and top
    assert all({"where", "size_kb", "blocks"} <= set(row) for row in top)


def test_perf_dict_round_trip_and_merge():
    net = _flood_net()
    counters = PerfCounters().install(net)
    _run_flood(net)
    data = json.loads(json.dumps(counters.to_dict()))
    back = PerfCounters.from_dict(data)
    assert back.to_dict() == counters.to_dict()

    doubled = PerfCounters.from_dict(data).merge(back)
    assert doubled.sched_pop == 2 * counters.sched_pop
    assert doubled.handler_us.count == 2 * counters.handler_us.count
    assert merge_perf_dicts([]) is None
    assert merge_perf_dicts([data])["counters"] == data["counters"]


@pytest.mark.parametrize("kernel", ("heap", "wheel"))
def test_scheduler_ledger_balances(kernel):
    """``sched_push == sched_pop + sched_cancelled_drops + pending``.

    The push/pop/drop ledger must account for every event on both
    kernels, mid-run and at quiescence — it is how a perf breakdown
    proves no event was lost or double-counted by the cancelled-entry
    sweeps (which the two kernels run at different moments).
    """
    from repro.sim import Scheduler

    sched = Scheduler(kernel=kernel)
    counters = PerfCounters()
    sched.perf = counters

    def cancel_peer(victim):
        victim.cancel()

    handles = [sched.schedule(float(i % 4), lambda: None) for i in range(40)]
    for handle in handles[::5]:
        handle.cancel()
    # Mid-run cancellations: events at t=1 cancel not-yet-fired peers.
    sched.schedule(1.0, cancel_peer, 2, "axe", (handles[2],))
    sched.schedule(1.0, cancel_peer, 2, "axe", (handles[3],))

    def balanced():
        return counters.sched_push == (
            counters.sched_pop + counters.sched_cancelled_drops + sched.pending
        )

    assert balanced()  # nothing fired yet: push == pending + early drops
    sched.run(until=1.0)
    assert balanced()
    sched.run()
    assert sched.pending == 0
    assert balanced()
    assert counters.sched_push == 42
    assert counters.sched_pop == sched.events_processed


def test_render_is_presentable():
    net = _flood_net("ring:8")
    counters = PerfCounters().install(net)
    _run_flood(net)
    text = counters.render()
    assert "ss_hops" in text and "ncu handler wall (us)" in text


# ----------------------------------------------------------------------
# Observation must not perturb (acceptance criterion)
# ----------------------------------------------------------------------
def test_golden_equivalence_with_counters_enabled():
    """The golden suite's documents are byte-identical under perf."""
    golden = json.loads(GOLDEN_PATH.read_text())
    counters = PerfCounters().activate()
    try:
        for name, scenario in SCENARIOS.items():
            current = scenario()
            assert json.dumps(current, sort_keys=True) == json.dumps(
                golden[name], sort_keys=True
            ), f"scenario {name} diverged with perf counters enabled"
    finally:
        PerfCounters.deactivate()
    assert counters.sched_pop > 0 and counters.ss_hops > 0


def test_bench_perf_block_leaves_metrics_identical():
    plain = run_benchmark("broadcast_grid")
    instrumented = run_benchmark("broadcast_grid", perf=True)
    assert "perf" not in plain and "perf" in instrumented
    for key, value in plain["metrics"].items():
        if key in ("wall_ms", "events_per_sec"):
            continue  # wall-clock, moves run to run regardless
        assert instrumented["metrics"][key] == value
    counters = instrumented["perf"]["counters"]
    assert counters["sched_pop"] == plain["metrics"]["events"]
    assert counters["ncu_jobs"] == plain["metrics"]["system_calls"]


# ----------------------------------------------------------------------
# Campaign telemetry
# ----------------------------------------------------------------------
def _mc_specs(count: int = 2) -> list[TaskSpec]:
    return [
        TaskSpec.make(
            "repro.exec.workloads:election_calls_per_node",
            seed=i,
            topology="ring:8",
            label=f"mc[{i}]",
        )
        for i in range(count)
    ]


def test_campaign_perf_serial_and_manifest_merge():
    outcome = run_campaign(_mc_specs(), jobs=1, perf=True)
    assert all(r.perf is not None for r in outcome.results)
    merged = outcome.merged_perf()
    assert merged["counters"]["sched_pop"] == sum(
        r.perf["counters"]["sched_pop"] for r in outcome.results
    )
    manifest = CampaignManifest.from_outcome(
        outcome, command="test", workload="montecarlo"
    )
    assert manifest.perf == merged
    assert manifest.substrate_reuse in (True, False)


def test_campaign_perf_counters_identical_across_sharding():
    """Deterministic counters don't depend on where a task ran."""
    serial = run_campaign(_mc_specs(), jobs=1, perf=True)
    pooled = run_campaign(_mc_specs(), jobs=2, perf=True)
    deterministic = ("sched_push", "sched_pop", "ss_hops", "ncu_jobs",
                     "trace_records")
    for a, b in zip(serial.results, pooled.results):
        for key in deterministic:
            assert a.perf["counters"][key] == b.perf["counters"][key]
        assert a.value == b.value


def test_campaign_without_perf_carries_none():
    outcome = run_campaign(_mc_specs(1), jobs=1)
    assert outcome.results[0].perf is None
    assert outcome.merged_perf() is None
    manifest = CampaignManifest.from_outcome(outcome, command="test")
    assert manifest.perf is None


def test_run_manifest_records_substrate_provenance():
    net = _flood_net("ring:8")
    _run_flood(net)
    manifest = RunManifest.collect(net, command="test")
    assert manifest.substrate_reuse in (True, False)
    data = manifest.to_dict()
    assert "substrate_reuse" in data and "substrate_pool" in data


# ----------------------------------------------------------------------
# Sampling profiler
# ----------------------------------------------------------------------
def _busy_wait(seconds: float) -> int:
    deadline = time.perf_counter() + seconds
    spins = 0
    while time.perf_counter() < deadline:
        spins += 1
    return spins


def test_sampling_profiler_outputs(tmp_path):
    profiler = SamplingProfiler(hz=500)
    with profiler:
        _busy_wait(0.25)
    assert profiler.samples > 0
    collapsed = profiler.collapsed()
    assert any("_busy_wait" in stack for stack in collapsed)

    text_path = profiler.write_collapsed(tmp_path / "out.collapsed.txt")
    lines = text_path.read_text().strip().splitlines()
    assert lines and all(line.rsplit(" ", 1)[1].isdigit() for line in lines)

    doc = json.loads(
        profiler.write_speedscope(
            tmp_path / "out.speedscope.json", name="unit"
        ).read_text()
    )
    assert doc["$schema"].startswith("https://www.speedscope.app")
    profile = doc["profiles"][0]
    assert profile["type"] == "sampled"
    assert len(profile["samples"]) == len(profile["weights"])
    n_frames = len(doc["shared"]["frames"])
    assert all(0 <= idx < n_frames for stack in profile["samples"] for idx in stack)
    assert profile["endValue"] == pytest.approx(sum(profile["weights"]))


def test_sampling_profiler_guards():
    with pytest.raises(ValueError):
        SamplingProfiler(hz=0)
    profiler = SamplingProfiler(hz=100).start()
    try:
        with pytest.raises(RuntimeError, match="already running"):
            profiler.start()
    finally:
        profiler.stop()
    profiler.stop()  # idempotent


# ----------------------------------------------------------------------
# Build-memory gauge
# ----------------------------------------------------------------------
def test_measure_build_bytes_per_node_sets_gauge():
    perf = PerfCounters()
    net = perf.measure_build_bytes_per_node(
        lambda: from_spec("grid:4,4", trace=False)
    )
    assert net.n == 16
    assert perf.build_bytes_per_node > 0
    # The gauge merges by max and survives serialisation.
    clone = PerfCounters.from_dict(perf.to_dict())
    assert clone.build_bytes_per_node == perf.build_bytes_per_node
    low = PerfCounters()
    low.merge(perf)
    assert low.build_bytes_per_node == perf.build_bytes_per_node
    assert "build_bytes_per_node" in perf.render()


def test_measure_build_bytes_per_node_explicit_count_and_guards():
    perf = PerfCounters()
    blob = perf.measure_build_bytes_per_node(lambda: bytearray(10_000), nodes=10)
    assert len(blob) == 10_000
    assert perf.build_bytes_per_node >= 1_000
    with pytest.raises(ValueError):
        perf.measure_build_bytes_per_node(lambda: object())
    perf.start_alloc_tracking()
    try:
        with pytest.raises(RuntimeError):
            perf.measure_build_bytes_per_node(lambda: None, nodes=1)
    finally:
        perf.stop_alloc_tracking()
