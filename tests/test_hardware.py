"""Integration tests for the SS/NCU substrate: switching, copies,
drops, FIFO, reverse paths, the dmax restriction and the NCU queue."""

from __future__ import annotations

import pytest

from conftest import attach_recorders, limiting_net
from repro.hardware import NCU_ID, build_anr, path_broadcast_anr, reply_route
from repro.network import Network, Protocol, topologies
from repro.sim import FixedDelays, PathTooLongError, ProtocolError, RoutingError, TraceKind


def test_packet_travels_full_route_without_intermediate_ncu():
    net = limiting_net(topologies.line(5), trace=True)
    recorders = attach_recorders(net)
    header = build_anr([0, 1, 2, 3, 4], net.id_lookup)
    net.node(0).inject(header, payload="data")
    net.run_to_quiescence()
    assert [p.payload for p in recorders[4].packets] == ["data"]
    for mid in (1, 2, 3):
        assert recorders[mid].packets == []
    # 4 hardware hops, exactly 1 system call (the receiver's).
    assert net.metrics.hops == 4
    assert net.metrics.system_calls == 1


def test_selective_copy_reaches_intermediates_and_forwards():
    net = limiting_net(topologies.line(4))
    recorders = attach_recorders(net)
    header = path_broadcast_anr([0, 1, 2, 3], net.id_lookup)
    net.node(0).inject(header, payload="bcast")
    net.run_to_quiescence()
    for node in (1, 2, 3):
        assert [p.payload for p in recorders[node].packets] == ["bcast"]
    assert net.metrics.copies == 3


def test_reverse_path_enables_reply():
    net = limiting_net(topologies.line(4))
    recorders = attach_recorders(net)
    header = build_anr([0, 1, 2, 3], net.id_lookup)
    net.node(0).inject(header, "ping")
    net.run_to_quiescence()
    (ping,) = recorders[3].packets
    net.node(3).inject(reply_route(ping), "pong")
    net.run_to_quiescence()
    assert [p.payload for p in recorders[0].packets] == ["pong"]


def test_hardware_delay_accumulates_per_hop():
    net = Network(topologies.line(4), delays=FixedDelays(hardware=2.0, software=1.0))
    recorders = attach_recorders(net)
    header = build_anr([0, 1, 2, 3], net.id_lookup)
    net.node(0).inject(header, "x")
    net.run_to_quiescence()
    # 3 hops * C=2 + one software delay P=1 at the destination.
    assert net.scheduler.now == pytest.approx(7.0)
    assert len(recorders[3].packets) == 1


def test_unroutable_id_drops_packet():
    net = limiting_net(topologies.line(3), trace=True)
    attach_recorders(net)
    bogus = 13  # no link with this ID at node 0
    net.node(0).inject((bogus,), "lost")
    net.run_to_quiescence()
    assert net.metrics.drops == 1
    drop = net.trace.last(TraceKind.PACKET_DROPPED)
    assert drop.detail["reason"] == "unroutable_id"


def test_header_exhaustion_drops_packet():
    net = limiting_net(topologies.line(3), trace=True)
    attach_recorders(net)
    header = build_anr([0, 1, 2], net.id_lookup, deliver=False)
    net.node(0).inject(header, "no-deliver")
    net.run_to_quiescence()
    assert net.metrics.system_calls == 0
    drop = net.trace.last(TraceKind.PACKET_DROPPED)
    assert drop.detail["reason"] == "header_exhausted"


def test_inactive_link_loses_packet():
    net = limiting_net(topologies.line(3), trace=True)
    recorders = attach_recorders(net)
    net.fail_link(1, 2)
    net.run_to_quiescence()  # let the datalink notifications drain
    header = build_anr([0, 1, 2], net.id_lookup)
    net.node(0).inject(header, "doomed")
    net.run_to_quiescence()
    assert recorders[2].packets == []
    assert net.metrics.drops >= 1


def test_packet_in_flight_when_link_fails_is_lost():
    net = Network(topologies.line(2), delays=FixedDelays(hardware=5.0, software=1.0))
    recorders = attach_recorders(net)
    header = build_anr([0, 1], net.id_lookup)
    net.node(0).inject(header, "mid-flight")
    net.schedule_link_failure(0, 1, at=2.0)  # while the packet is on the wire
    net.run_to_quiescence()
    assert recorders[1].packets == []


def test_dmax_enforced_at_injection():
    net = limiting_net(topologies.line(3), dmax=2)
    attach_recorders(net)
    header = build_anr([0, 1, 2], net.id_lookup)  # 3 IDs > dmax=2
    with pytest.raises(PathTooLongError):
        net.node(0).inject(header, "too long")


def test_empty_header_rejected():
    net = limiting_net(topologies.line(2))
    attach_recorders(net)
    with pytest.raises(RoutingError):
        net.node(0).inject((), "empty")


def test_fifo_order_preserved_per_link():
    net = limiting_net(topologies.line(2))
    recorders = attach_recorders(net)
    header = build_anr([0, 1], net.id_lookup)
    for i in range(5):
        net.node(0).inject(header, i)
    net.run_to_quiescence()
    assert [p.payload for p in recorders[1].packets] == [0, 1, 2, 3, 4]


def test_ncu_serves_jobs_sequentially():
    # Two packets arriving together are served P apart.
    net = limiting_net(topologies.star(3))
    times: dict[int, list[float]] = {}

    class Stamper(Protocol):
        def on_packet(self, packet):
            times.setdefault(self.api.node_id, []).append(self.api.now)

    net.attach(lambda api: Stamper(api))
    for leaf in (1, 2):
        net.node(leaf).inject(build_anr([leaf, 0], net.id_lookup), "x")
    net.run_to_quiescence()
    a, b = times[0]
    assert b - a == pytest.approx(1.0)


def test_send_to_self_via_ncu_id():
    net = limiting_net(topologies.line(2))
    recorders = attach_recorders(net)
    net.node(0).inject((NCU_ID,), "self")
    net.run_to_quiescence()
    assert [p.payload for p in recorders[0].packets] == ["self"]


def test_port_discipline_blocks_two_sends_on_one_link():
    net = limiting_net(topologies.line(2))

    class DoubleSender(Protocol):
        def on_start(self, payload):
            header = build_anr([0, 1], net.id_lookup)
            self.api.send(header, "first")
            self.api.send(header, "second")  # same port, same system call

    net.attach(lambda api: DoubleSender(api))
    net.start([0])
    with pytest.raises(ProtocolError, match="multicast"):
        net.run_to_quiescence()


def test_port_discipline_allows_distinct_links():
    net = limiting_net(topologies.star(4))
    received: dict[int, list] = {node: [] for node in net.nodes}

    class Multicaster(Protocol):
        def on_start(self, payload):
            for info in self.api.active_links():
                self.api.send((info.normal_at_u, NCU_ID), "fanout")

        def on_packet(self, packet):
            received[self.api.node_id].append(packet.payload)

    net.attach(lambda api: Multicaster(api))
    net.start([0])
    net.run_to_quiescence()
    assert all(received[leaf] == ["fanout"] for leaf in (1, 2, 3))


def test_copy_and_forward_same_port_is_one_send():
    # A copy ID matches the link AND the NCU link: one send, two outputs.
    net = limiting_net(topologies.line(3))
    recorders = attach_recorders(net)
    header = build_anr([0, 1, 2], net.id_lookup, copy_at=[1])
    net.node(0).inject(header, "both")
    net.run_to_quiescence()
    assert [p.payload for p in recorders[1].packets] == ["both"]
    assert [p.payload for p in recorders[2].packets] == ["both"]


def test_timer_fires_and_counts_system_call():
    net = limiting_net(topologies.line(2))
    recorders = attach_recorders(net)
    net.node(0).api.set_timer(5.0, tag="tick", payload=42)
    net.run_to_quiescence()
    assert recorders[0].timers == [("tick", 42)]
    assert net.metrics.system_calls_of_kind("timer:tick") == 1


def test_cancelled_timer_never_fires():
    net = limiting_net(topologies.line(2))
    recorders = attach_recorders(net)
    event = net.node(0).api.set_timer(5.0, tag="tick")
    event.cancel()
    net.run_to_quiescence()
    assert recorders[0].timers == []
