"""Rule-coverage tests: every Section 4 rule fires and behaves.

The election protocol counts each paper rule it applies (``stats``).
These tests sweep enough scenarios to prove all rules are exercised by
the implementation — including the rare waiting rules 2.3/2.4 — and
assert per-rule invariants.
"""

from __future__ import annotations

from collections import Counter

import pytest

from repro.core import LeaderElection
from repro.network import Network, topologies
from repro.sim import FixedDelays, RandomDelays


def run_and_collect(g, *, delays=None, starters=None) -> tuple[Network, Counter]:
    net = Network(g, delays=delays or FixedDelays(0.0, 1.0))
    net.attach(lambda api: LeaderElection(api))
    net.start(starters)
    net.run_to_quiescence(max_events=5_000_000)
    totals: Counter = Counter()
    for node in net.nodes.values():
        totals.update(node.protocol.stats)
    flags = net.outputs_for_key("is_leader")
    assert sum(1 for f in flags.values() if f) == 1
    return net, totals


def sweep_totals() -> Counter:
    """Aggregate rule counts over a diverse scenario sweep."""
    totals: Counter = Counter()
    scenarios = [
        (topologies.complete(16), None, None),
        (topologies.ring(24), None, None),
        (topologies.grid(5, 5), None, None),
        (topologies.star(12), None, None),
        (topologies.random_connected(40, 0.12, seed=1), None, None),
    ]
    for seed in range(6):
        scenarios.append(
            (
                topologies.random_connected(30, 0.15, seed=seed),
                RandomDelays(hardware=0.3, software=1.0, seed=seed),
                None,
            )
        )
    for g, delays, starters in scenarios:
        _, t = run_and_collect(g, delays=delays, starters=starters)
        totals.update(t)
    return totals


TOTALS = None


def get_totals() -> Counter:
    global TOTALS
    if TOTALS is None:
        TOTALS = sweep_totals()
    return TOTALS


@pytest.mark.parametrize(
    "rule",
    [
        "rule1_return",
        "rule1_forward",
        "rule2.1",
        "rule2.2",
        "rule2.3_wait",
        "rule2.4_evict",
        "comeback_capture",
        "capture_merge",
        "became_leader",
        "nudge",
    ],
)
def test_every_rule_fires_somewhere(rule):
    assert get_totals()[rule] > 0, f"{rule} never exercised by the sweep"


def test_captures_total_n_minus_1():
    # Every node except the final leader is captured exactly once, so
    # merges across the network equal n - 1 per run... except domains:
    # each merge absorbs one whole domain, and every domain except the
    # winner's is absorbed exactly once.
    net, totals = run_and_collect(topologies.random_connected(32, 0.15, seed=9))
    captures = totals["rule2.2"] + totals["comeback_capture"]
    assert captures == totals["capture_merge"]
    # At least log2(n) merges are needed to grow a domain to size n.
    assert totals["capture_merge"] >= 5
    # And no more than n - 1 domains can ever be absorbed.
    assert totals["capture_merge"] <= net.n - 1


def test_single_leader_stat():
    _, totals = run_and_collect(topologies.grid(4, 4))
    assert totals["became_leader"] == 1


def test_rule1_budget_never_exceeded():
    # The instrumented token hop counter is checked inside the protocol;
    # here we assert rule1 returns happen only for over-budget tours by
    # construction: every rule1_return coincides with hops > phase,
    # which the protocol enforces; a sweep just has to not crash and
    # elect exactly one leader (asserted in run_and_collect).
    _, totals = run_and_collect(
        topologies.random_connected(48, 0.1, seed=3),
        delays=RandomDelays(hardware=0.2, software=1.0, seed=3),
    )
    assert totals["rule1_forward"] >= totals["rule1_return"] * 0  # sweep ran


def test_waiting_slot_never_leaks():
    # After quiescence no node may still hold a waiting visitor: every
    # waiter is resolved by the comeback it waits for (Lemma 5).
    net, _ = run_and_collect(topologies.random_connected(36, 0.13, seed=7))
    for node in net.nodes.values():
        assert node.protocol.waiting is None


def test_outbox_drained_at_quiescence():
    net, _ = run_and_collect(topologies.grid(6, 6))
    for node in net.nodes.values():
        assert node.protocol._outbox == []
