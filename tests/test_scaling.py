"""Empirical asymptotics: measured cost series must have the paper's shape.

These tests run each algorithm across a size sweep and *fit* the
measured system-call / time series against growth models, asserting the
paper's asymptotic claims hold in the implementation — not just at one
size.
"""

from __future__ import annotations

import math

import pytest

from repro.analysis.fitting import best_model, loglog_slope
from repro.core import (
    BranchingPathsBroadcast,
    ChangRoberts,
    DirectBroadcast,
    FloodingBroadcast,
    HirschbergSinclair,
    LeaderElection,
    run_standalone_broadcast,
)
from repro.network import Network, topologies
from repro.sim import FixedDelays

SIZES = [16, 32, 64, 128, 256]


def broadcast_series(proto_cls):
    calls, times = [], []
    for n in SIZES:
        p = min(0.5, 2.5 * math.log(n) / n)
        net = Network(topologies.random_connected(n, p, seed=n),
                      delays=FixedDelays(0.0, 1.0))
        adjacency = net.adjacency()
        if proto_cls is FloodingBroadcast:
            factory = lambda api: FloodingBroadcast(api, root=0)
        else:
            factory = lambda api: proto_cls(
                api, root=0, adjacency=adjacency, ids=net.id_lookup
            )
        run = run_standalone_broadcast(net, factory, 0)
        calls.append(run.system_calls)
        times.append(run.completion_time())
    return calls, times


def election_series(make_factory):
    """System-call totals on rings; ``make_factory(perm)`` builds the
    per-node protocol factory given a random priority permutation."""
    import random

    calls = []
    for n in SIZES:
        rng = random.Random(n)
        perm = list(range(n))
        rng.shuffle(perm)
        net = Network(topologies.ring(n), delays=FixedDelays(0.0, 1.0))
        net.attach(make_factory(perm))
        net.start()
        net.run_to_quiescence(max_events=10_000_000)
        calls.append(net.metrics.system_calls)
    return calls


def test_bpaths_calls_scale_linearly():
    calls, _ = broadcast_series(BranchingPathsBroadcast)
    assert loglog_slope(SIZES, calls) == pytest.approx(1.0, abs=0.05)
    assert best_model(SIZES, calls)[0].name == "n"


def test_bpaths_time_scales_logarithmically():
    _, times = broadcast_series(BranchingPathsBroadcast)
    # Time grows much slower than any polynomial: slope near zero.
    assert loglog_slope(SIZES, times) < 0.35
    assert times[-1] <= 1 + (1 + math.log2(SIZES[-1]))


def test_direct_time_scales_linearly():
    _, times = broadcast_series(DirectBroadcast)
    assert loglog_slope(SIZES, times) == pytest.approx(1.0, abs=0.05)


def test_flooding_calls_scale_with_m():
    calls, _ = broadcast_series(FloodingBroadcast)
    # On G(n, c·log n / n) graphs m ~ n log n, so calls should fit
    # n log n far better than n.
    fits = {f.name: f.relative_rmse for f in best_model(SIZES, calls)}
    assert fits["n log n"] < fits["n"]


def test_new_election_scales_linearly():
    calls = election_series(lambda perm: lambda api: LeaderElection(api))
    assert loglog_slope(SIZES, calls) == pytest.approx(1.0, abs=0.1)
    assert best_model(SIZES, calls)[0].name == "n"


def test_hirschberg_sinclair_scales_nlogn():
    # Random priority arrangements; identity priorities on an ascending
    # ring are HS's *best* case (linear), which is itself worth knowing.
    calls = election_series(
        lambda perm: lambda api: HirschbergSinclair(api, priority=perm[api.node_id])
    )
    fits = {f.name: f.relative_rmse for f in best_model(SIZES, calls)}
    assert fits["n log n"] < fits["n"]
    assert fits["n log n"] < fits["n^2"]


def test_hirschberg_sinclair_identity_priorities_are_linear_best_case():
    calls = election_series(lambda perm: lambda api: HirschbergSinclair(api))
    assert best_model(SIZES, calls)[0].name == "n"


def test_chang_roberts_worst_case_scales_quadratically():
    calls = election_series(
        lambda perm: lambda api: ChangRoberts(api, direction=-1)
    )
    assert loglog_slope(SIZES, calls) == pytest.approx(2.0, abs=0.15)
    assert best_model(SIZES, calls)[0].name == "n^2"


def test_chang_roberts_best_case_scales_linearly():
    calls = election_series(
        lambda perm: lambda api: ChangRoberts(api, direction=+1)
    )
    assert loglog_slope(SIZES, calls) == pytest.approx(1.0, abs=0.1)


def test_crossover_new_vs_hs():
    # The new algorithm's totals cross below HS early and stay below.
    new = election_series(lambda perm: lambda api: LeaderElection(api))
    hs = election_series(
        lambda perm: lambda api: HirschbergSinclair(api, priority=perm[api.node_id])
    )
    assert all(a < b for a, b in zip(new, hs))
    # And the gap widens.
    ratios = [b / a for a, b in zip(new, hs)]
    assert ratios[-1] > ratios[0]


def test_election_time_scales_linearly():
    # Theorem 5 implies O(n) time too: time per run divided by n should
    # stay bounded (log-log slope ~<= 1).
    times = []
    for n in SIZES:
        net = Network(topologies.ring(n), delays=FixedDelays(0.0, 1.0))
        net.attach(lambda api: LeaderElection(api))
        net.start()
        net.run_to_quiescence(max_events=10_000_000)
        times.append(net.scheduler.now)
    slope = loglog_slope(SIZES, times)
    assert slope <= 1.15
    assert times[-1] <= 6 * SIZES[-1]  # comfortably linear in absolute terms
