"""Tests for the scaling-law fitting helpers."""

from __future__ import annotations

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis.fitting import best_model, fit_constant, loglog_slope


def test_loglog_slope_recovers_exponent():
    ns = [10, 20, 40, 80, 160]
    for k in (0.5, 1.0, 2.0, 3.0):
        ys = [3.7 * n**k for n in ns]
        assert loglog_slope(ns, ys) == pytest.approx(k, abs=1e-9)


def test_loglog_slope_validates_input():
    with pytest.raises(ValueError):
        loglog_slope([1], [1])
    with pytest.raises(ValueError):
        loglog_slope([2, 2], [1, 2])
    with pytest.raises(ValueError):
        loglog_slope([1, 2], [1])


def test_fit_constant_exact():
    ns = [4, 8, 16]
    ys = [2.5 * n * math.log(n) for n in ns]
    c = fit_constant(ns, ys, lambda n: n * math.log(n))
    assert c == pytest.approx(2.5)


def test_fit_constant_zero_model_rejected():
    with pytest.raises(ValueError):
        fit_constant([1, 2], [1, 2], lambda n: 0.0)


def test_best_model_identifies_nlogn():
    ns = [8, 16, 32, 64, 128, 256]
    ys = [1.4 * n * math.log(n) for n in ns]
    fits = best_model(ns, ys)
    assert fits[0].name == "n log n"
    assert fits[0].constant == pytest.approx(1.4)
    assert fits[0].relative_rmse < 1e-9


def test_best_model_identifies_linear_with_noise():
    import random

    rng = random.Random(0)
    ns = [16, 32, 64, 128, 256, 512]
    ys = [6.0 * n * (1 + 0.05 * (rng.random() - 0.5)) for n in ns]
    fits = best_model(ns, ys)
    assert fits[0].name == "n"


def test_best_model_identifies_quadratic():
    ns = [8, 16, 32, 64]
    ys = [0.5 * n * n for n in ns]
    assert best_model(ns, ys)[0].name == "n^2"


def test_best_model_identifies_log():
    ns = [8, 64, 512, 4096]
    ys = [2.0 * math.log(n) for n in ns]
    assert best_model(ns, ys)[0].name == "log n"


@given(
    st.sampled_from(["n", "n log n", "n^2", "log n"]),
    st.floats(min_value=0.1, max_value=50.0),
)
def test_best_model_roundtrip_property(name, constant):
    from repro.analysis.fitting import GROWTH_MODELS

    ns = [8, 16, 32, 64, 128, 256, 512]
    model = GROWTH_MODELS[name]
    ys = [constant * model(n) for n in ns]
    fits = best_model(ns, ys)
    assert fits[0].name == name
    assert fits[0].constant == pytest.approx(constant, rel=1e-6)
