"""Unit and property tests for rooted trees and BFS spanning trees."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from conftest import graph_adjacency, random_tree
from repro.network import bfs_tree, topologies, tree_from_parent


def test_bfs_tree_on_line():
    adjacency = graph_adjacency(topologies.line(5))
    tree = bfs_tree(adjacency, 0)
    assert tree.root == 0
    assert tree.parent == {0: None, 1: 0, 2: 1, 3: 2, 4: 3}
    assert tree.depth() == 4
    assert tree.leaves() == (4,)


def test_bfs_tree_minimum_hop_depths():
    g = topologies.grid(4, 4)
    adjacency = graph_adjacency(g)
    tree = bfs_tree(adjacency, 0)
    import networkx as nx

    shortest = nx.single_source_shortest_path_length(g, 0)
    for node in tree.parent:
        assert tree.depth_of(node) == shortest[node]


def test_bfs_tree_spans_only_reachable_component():
    adjacency = {0: (1,), 1: (0,), 2: (3,), 3: (2,)}
    tree = bfs_tree(adjacency, 0)
    assert set(tree.parent) == {0, 1}


def test_bfs_tree_deterministic():
    adjacency = graph_adjacency(topologies.random_connected(25, 0.2, seed=3))
    t1 = bfs_tree(adjacency, 0)
    t2 = bfs_tree(adjacency, 0)
    assert t1.parent == t2.parent


def test_bfs_tree_unknown_root():
    with pytest.raises(ValueError):
        bfs_tree({0: (1,), 1: (0,)}, 7)


def test_tree_requires_consistent_parent_map():
    with pytest.raises(ValueError):
        tree_from_parent(0, {0: None, 1: 9})  # 9 is not a node
    with pytest.raises(ValueError):
        tree_from_parent(0, {0: 1, 1: None})  # root must map to None


def test_tree_nodes_bfs_order():
    tree = tree_from_parent(0, {0: None, 1: 0, 2: 0, 3: 1, 4: 1})
    assert tree.nodes == (0, 1, 2, 3, 4)
    assert tree.children[0] == (1, 2)
    assert tree.children[1] == (3, 4)


def test_path_from_root():
    tree = tree_from_parent(0, {0: None, 1: 0, 2: 1, 3: 2})
    assert tree.path_from_root(3) == (0, 1, 2, 3)
    assert tree.path_from_root(0) == (0,)


def test_subtree_sizes_and_nodes():
    tree = tree_from_parent(0, {0: None, 1: 0, 2: 0, 3: 1, 4: 3})
    sizes = tree.subtree_sizes()
    assert sizes == {0: 5, 1: 3, 2: 1, 3: 2, 4: 1}
    assert set(tree.subtree_nodes(1)) == {1, 3, 4}


def test_edges_and_len():
    tree = tree_from_parent(0, {0: None, 1: 0, 2: 0})
    assert len(tree) == 3
    assert sorted(tree.edges()) == [(0, 1), (0, 2)]
    assert 1 in tree and 9 not in tree


@given(st.integers(min_value=1, max_value=60), st.integers(min_value=0, max_value=10**6))
def test_random_tree_invariants(n, seed):
    tree = random_tree(n, seed)
    sizes = tree.subtree_sizes()
    assert sizes[tree.root] == n
    assert len(tree.nodes) == n
    # Depth of every node equals the length of its root path.
    for node in tree.parent:
        assert tree.depth_of(node) == len(tree.path_from_root(node)) - 1
    # Leaves have no children; everyone else does.
    for node in tree.parent:
        assert (node in tree.leaves()) == (not tree.children[node])
