"""Tests for the DFS and layered-BFS one-packet broadcasts (E11)."""

from __future__ import annotations

import pytest

from conftest import graph_adjacency, limiting_net
from repro.core import (
    DfsBroadcast,
    LayeredBfsBroadcast,
    euler_tour,
    dfs_broadcast_header,
    layered_broadcast_header,
    layered_tour,
    run_standalone_broadcast,
)
from repro.network import Network, bfs_tree, topologies
from repro.sim import FixedDelays, PathTooLongError


def tree_of(g, root=0):
    return bfs_tree(graph_adjacency(g), root)


def test_euler_tour_visits_every_node():
    tree = tree_of(topologies.complete_binary_tree(3))
    tour = euler_tour(tree)
    assert set(tour) == set(tree.parent)
    # Trimmed: ends at the last newly discovered node (a leaf).
    assert tour[-1] in tree.leaves()
    # Consecutive entries are tree-adjacent.
    for a, b in zip(tour, tour[1:]):
        assert tree.parent.get(a) == b or tree.parent.get(b) == a


def test_euler_tour_child_order_override():
    tree = tree_of(topologies.star(4))
    reversed_tour = euler_tour(tree, child_order=lambda n, cs: tuple(reversed(cs)))
    assert reversed_tour[1] == 3  # descends into the highest child first


def test_dfs_header_length_bound():
    for depth in range(1, 5):
        tree = tree_of(topologies.complete_binary_tree(depth))
        header = dfs_broadcast_header(tree, lambda a, b: (1, 2))
        n = len(tree)
        assert len(header) <= 2 * (n - 1) + 1


def test_dfs_broadcast_covers_everything_in_constant_time(small_graphs):
    for g in small_graphs:
        net = limiting_net(g)
        adjacency = net.adjacency()
        run = run_standalone_broadcast(
            net,
            lambda api: DfsBroadcast(api, root=0, adjacency=adjacency, ids=net.id_lookup),
            0,
        )
        assert run.coverage == net.n
        assert run.system_calls == net.n - 1
        assert run.completion_time() <= 2.0  # constant: start + one copy slot


def test_dfs_broadcast_dies_at_failed_link():
    # The single packet is lost at the first failure; everything after
    # the failure point on the tour stays uninformed.
    net = limiting_net(topologies.line(6))
    net.fail_link(2, 3)
    stale = graph_adjacency(topologies.line(6))
    net.attach(
        lambda api: DfsBroadcast(api, root=0, adjacency=stale, ids=net.id_lookup)
    )
    net.run_to_quiescence()
    net.start([0])
    net.run_to_quiescence()
    received = set(net.outputs_for_key("received_at"))
    assert received == {0, 1, 2}


def test_layered_tour_is_prefix_closed_by_depth():
    tree = tree_of(topologies.complete_binary_tree(3))
    tour = layered_tour(tree)
    depth_of = {node: tree.depth_of(node) for node in tree.parent}
    first_visit = {}
    for index, node in enumerate(tour):
        first_visit.setdefault(node, index)
    # Nodes at smaller depth are always first-visited earlier.
    for a in tree.parent:
        for b in tree.parent:
            if depth_of[a] < depth_of[b]:
                assert first_visit[a] < first_visit[b]


def test_layered_header_is_quadratic_but_covers():
    g = topologies.line(10)
    tree = tree_of(g)
    header = layered_broadcast_header(tree, lambda a, b: (1, 2))
    # Sum over layers k of ~2k hops: Θ(n²) on a path.
    assert len(header) > 40


def test_layered_broadcast_needs_relaxed_dmax():
    g = topologies.line(12)
    net = limiting_net(g)  # default dmax = 2n + 2
    adjacency = net.adjacency()
    net.attach(
        lambda api: LayeredBfsBroadcast(api, root=0, adjacency=adjacency, ids=net.id_lookup)
    )
    net.start([0])
    with pytest.raises(PathTooLongError):
        net.run_to_quiescence()


def test_layered_broadcast_covers_in_constant_time_with_big_dmax(small_graphs):
    for g in small_graphs:
        net = Network(g, delays=FixedDelays(0.0, 1.0), dmax=10**6)
        adjacency = net.adjacency()
        run = run_standalone_broadcast(
            net,
            lambda api: LayeredBfsBroadcast(
                api, root=0, adjacency=adjacency, ids=net.id_lookup
            ),
            0,
        )
        assert run.coverage == net.n
        assert run.system_calls == net.n - 1
        assert run.completion_time() <= 2.0


def test_layered_broadcast_prefix_coverage_under_failure():
    # Fail a link deep on the line: all closer layers still informed —
    # the property the DFS tour lacks.
    net = Network(topologies.line(8), delays=FixedDelays(0.0, 1.0), dmax=10**6)
    net.fail_link(5, 6)
    stale = graph_adjacency(topologies.line(8))
    net.attach(
        lambda api: LayeredBfsBroadcast(api, root=0, adjacency=stale, ids=net.id_lookup)
    )
    net.run_to_quiescence()
    net.start([0])
    net.run_to_quiescence()
    received = set(net.outputs_for_key("received_at"))
    assert received == {0, 1, 2, 3, 4, 5}
