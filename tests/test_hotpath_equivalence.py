"""Golden-equivalence suite for the forwarding hot path.

The hot-path refactor (immutable-header cursors, allocation-free
forwarding, tuple-keyed scheduler heap) promises **bit-identical
behaviour**: system calls, hops, drop reasons, FIFO order, reverse-ANR
contents and trace streams must not move at all.  This suite locks that
in: three scenarios (flooding, branching-paths broadcast, failure
injection with malformed packets) run on fixed seeds and their full
observable output — metrics dicts, drop-reason counts, per-delivery
reverse-ANR routes and the complete trace stream — is compared
byte-for-byte against committed golden JSON that was generated from the
*pre-refactor* code.

Regenerate (only when behaviour is *meant* to change)::

    PYTHONPATH=src python tests/test_hotpath_equivalence.py --regen
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path
from typing import Any

import pytest

from repro.core import (
    BranchingPathsBroadcast,
    FloodingBroadcast,
    run_standalone_broadcast,
)
from repro.hardware.anr import reply_route
from repro.network.builder import from_spec
from repro.obs.exporters import record_to_dict
from repro.sim import FixedDelays, RandomDelays
from repro.sim.trace import TraceKind

GOLDEN_PATH = Path(__file__).parent / "golden" / "hotpath_golden.json"


def _remaining_header(packet: Any) -> tuple[int, ...]:
    """Unconsumed header IDs, agnostic to the packet's internal layout."""
    pos = getattr(packet, "header_pos", 0)
    return tuple(packet.header)[pos:]


class RecordingFlood(FloodingBroadcast):
    """Flooding that logs every delivery's reverse-ANR view.

    The log entry captures exactly what a protocol can observe on a
    delivered packet: seq, hop count, accumulated reverse ANR, the
    ready-made reply route and the unconsumed header.
    """

    def __init__(self, api, *, root, body=None, sink: list) -> None:
        super().__init__(api, root=root, body=body)
        self._sink = sink

    def on_packet(self, packet) -> None:
        self._sink.append(
            [
                self.api.node_id,
                packet.seq,
                packet.hops,
                list(packet.reverse_anr),
                list(reply_route(packet)),
                list(_remaining_header(packet)),
                packet.original_header_length,
            ]
        )
        super().on_packet(packet)


def _snapshot_dict(snap) -> dict[str, Any]:
    """JSON-able rendering of a MetricsSnapshot with deterministic keys."""

    def by_repr(mapping):
        return {
            repr(key): mapping[key]
            for key in sorted(mapping, key=repr)
        }

    return {
        "system_calls": snap.system_calls,
        "hops": snap.hops,
        "packets_injected": snap.packets_injected,
        "header_ids": snap.header_ids,
        "copies": snap.copies,
        "drops": snap.drops,
        "system_calls_per_node": by_repr(snap.system_calls_per_node),
        "system_calls_by_kind": by_repr(snap.system_calls_by_kind),
        "hops_per_link": by_repr(snap.hops_per_link),
    }


def _document(net, deliveries: list) -> Any:
    """The full observable outcome of one scenario, JSON-normalised."""
    drop_reasons = Counter(
        record.detail.get("reason")
        for record in net.trace
        if record.kind is TraceKind.PACKET_DROPPED
    )
    doc = {
        "events": net.scheduler.events_processed,
        "final_time": net.scheduler.now,
        "metrics": _snapshot_dict(net.metrics.snapshot()),
        "drop_reasons": {reason: drop_reasons[reason] for reason in sorted(drop_reasons)},
        "deliveries": deliveries,
        "trace": [record_to_dict(record) for record in net.trace],
    }
    # One round trip makes tuples/lists and enum values canonical, so
    # the == below really is byte-identity of the serialised document.
    return json.loads(json.dumps(doc, sort_keys=True, default=repr))


# Each scenario is split into a delay-model factory, a builder and a
# driver so the substrate-reuse suite (tests/test_substrate_reuse.py)
# can build one network and drive it repeatedly through ``reset()``,
# diffing each run against the same golden document.  The factories
# matter for the RandomDelays scenario: the model owns RNG state, so a
# reset run must receive a *fresh* model to reproduce a fresh build.


def _delays_flood_random():
    return FixedDelays(0.5, 1.0)


def _build_flood_random():
    return from_spec("random:24,7", delays=_delays_flood_random(), trace=True)


def _drive_flood_random(net) -> Any:
    """Flooding on a random connected graph, nonzero hardware delay."""
    deliveries: list = []
    run_standalone_broadcast(
        net,
        lambda api: RecordingFlood(api, root=0, body="golden", sink=deliveries),
        0,
    )
    return _document(net, deliveries)


def _delays_bpaths_grid():
    return FixedDelays(0.0, 1.0)


def _build_bpaths_grid():
    return from_spec("grid:5,5", delays=_delays_bpaths_grid(), trace=True)


def _drive_bpaths_grid(net) -> Any:
    """Branching-paths broadcast on a grid in the limiting model."""
    adjacency = net.adjacency()
    run_standalone_broadcast(
        net,
        lambda api: BranchingPathsBroadcast(
            api, root=0, adjacency=adjacency, ids=net.id_lookup
        ),
        0,
    )
    return _document(net, deliveries=[])


def _delays_failures():
    return RandomDelays(hardware=2.5, software=1.0, lo_frac=0.2, seed=11)


def _build_failures():
    return from_spec("grid:4,4", delays=_delays_failures(), trace=True)


def _drive_failures(net) -> Any:
    """Flooding under random delays, mid-run link failures and
    malformed injections that exercise every hardware drop path."""
    deliveries: list = []
    net.attach(lambda api: RecordingFlood(api, root=0, body="f", sink=deliveries))

    # Failure times sit just after hop departures on these links (found
    # empirically for this seed), so packets die *in flight* — the
    # deliver-time inactive check — as well as at forward time below.
    link_keys = sorted(net.links, key=repr)
    net.schedule_link_failure(*link_keys[3], at=2.9)
    net.schedule_link_failure(*link_keys[12], at=8.8)
    net.schedule_link_failure(*link_keys[14], at=8.8)
    net.schedule_link_restore(*link_keys[12], at=12.0)

    injector = sorted(net.nodes, key=repr)[0]
    neighbor = net.adjacency()[injector][0]
    hop_id = net.id_lookup(injector, neighbor)[0]
    # (a) header exhausted one hop out; (b) no link carries this ID here.
    unroutable = net.id_space.normal_id(net.id_space.capacity - 1)
    assert unroutable not in {
        i for nbr in net.adjacency()[injector] for i in net.id_lookup(injector, nbr)
    }
    net.scheduler.schedule_at(
        0.5, lambda: net.node(injector).inject((hop_id,), "junk"), tag="inject"
    )
    net.scheduler.schedule_at(
        0.75, lambda: net.node(injector).inject((unroutable,), "junk"), tag="inject"
    )
    # (c) forwarding onto a link that is already down at forward time.
    dead_u, dead_v = link_keys[12]
    dead_id = net.id_lookup(dead_u, dead_v)[0]
    net.scheduler.schedule_at(
        9.0, lambda: net.node(dead_u).inject((dead_id, 0), "junk"), tag="inject"
    )
    # (d) a packet lost *in flight*: departs at 13.0 (arrival >= 13.5
    # since delays exceed lo_frac * bound = 0.5), link dies at 13.4.
    net.scheduler.schedule_at(
        13.0, lambda: net.node(dead_u).inject((dead_id, 0), "junk"), tag="inject"
    )
    net.schedule_link_failure(dead_u, dead_v, at=13.4)

    net.start([0])
    net.run_to_quiescence()
    return _document(net, deliveries)


#: name -> (builder, driver, fresh-delay-model factory).  The reuse
#: suite imports this to re-drive one substrate across resets.
SCENARIO_PARTS = {
    "flood_random": (_build_flood_random, _drive_flood_random,
                     _delays_flood_random),
    "bpaths_grid": (_build_bpaths_grid, _drive_bpaths_grid,
                    _delays_bpaths_grid),
    "failures": (_build_failures, _drive_failures, _delays_failures),
}

SCENARIOS = {
    name: (lambda build=build, drive=drive: drive(build()))
    for name, (build, drive, _) in SCENARIO_PARTS.items()
}


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_hotpath_golden_equivalence(name: str) -> None:
    golden = json.loads(GOLDEN_PATH.read_text())
    assert name in golden, f"golden file has no scenario {name!r}; regenerate"
    current = SCENARIOS[name]()
    current_bytes = json.dumps(current, sort_keys=True)
    golden_bytes = json.dumps(golden[name], sort_keys=True)
    assert current_bytes == golden_bytes, (
        f"hot-path behaviour diverged from golden in scenario {name!r}; "
        "the refactor is not observationally equivalent"
    )


def _regen() -> None:
    GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
    docs = {name: fn() for name, fn in sorted(SCENARIOS.items())}
    GOLDEN_PATH.write_text(json.dumps(docs, indent=2, sort_keys=True) + "\n")
    print(f"wrote {GOLDEN_PATH} ({GOLDEN_PATH.stat().st_size} bytes)")


if __name__ == "__main__":
    import sys

    if "--regen" in sys.argv:
        _regen()
    else:
        sys.exit(pytest.main([__file__, "-x", "-q"]))
