"""Step-wise global invariants of the election.

These tests single-step the scheduler and, every few events, check the
global state of the domain partition — properties the Section 4 proofs
rely on but which no single node can observe:

* active origins' IN sets are pairwise disjoint (a node belongs to at
  most one live domain);
* every IN set contains its origin;
* a captured node's domain never changes again (frozen);
* virtual parent pointers form a forest (each node captured at most
  once, no cycles);
* domain sizes match IN-set cardinalities and never shrink.
"""

from __future__ import annotations

import pytest

from repro.core import CandidateStatus, LeaderElection
from repro.network import Network, topologies
from repro.sim import FixedDelays, RandomDelays

ACTIVE_ORIGIN_STATES = {
    CandidateStatus.ON_TOUR,
    CandidateStatus.HOME_ACTIVE,
    CandidateStatus.INACTIVE,
    CandidateStatus.LEADER,
}


def check_global_invariants(net: Network, history: dict) -> None:
    in_sets = {}
    for node_id, node in net.nodes.items():
        protocol = node.protocol
        if protocol.domain is None:
            continue
        status = protocol.status
        domain = protocol.domain

        # Sizes are consistent and monotone.
        assert domain.size == len(domain.in_set)
        assert node_id in domain.in_set
        previous = history.get(node_id)
        if previous is not None:
            assert domain.size >= previous, f"domain of {node_id} shrank"
        history[node_id] = domain.size

        # Captured domains are frozen.
        if status is CandidateStatus.CAPTURED:
            frozen = history.setdefault(("frozen", node_id), domain.size)
            assert domain.size == frozen, f"captured {node_id} mutated"
            assert protocol.parent_anr is not None
        elif status in ACTIVE_ORIGIN_STATES:
            in_sets[node_id] = set(domain.in_set)

    # Disjointness across live origins.
    seen: dict = {}
    for origin, members in in_sets.items():
        for member in members:
            assert member not in seen, (
                f"node {member} in two live domains: {seen.get(member)} and {origin}"
            )
            seen[member] = origin


@pytest.mark.parametrize(
    "graph,delays_seed",
    [
        (topologies.complete(12), None),
        (topologies.ring(16), None),
        (topologies.grid(4, 4), None),
        (topologies.random_connected(20, 0.2, seed=3), None),
        (topologies.random_connected(20, 0.2, seed=4), 1),
        (topologies.random_connected(24, 0.15, seed=5), 2),
    ],
    ids=["K12", "ring16", "grid16", "rand20", "rand20-async", "rand24-async"],
)
def test_invariants_hold_at_every_step(graph, delays_seed):
    delays = (
        FixedDelays(0.0, 1.0)
        if delays_seed is None
        else RandomDelays(hardware=0.4, software=1.0, seed=delays_seed)
    )
    net = Network(graph, delays=delays)
    net.attach(lambda api: LeaderElection(api))
    net.start()
    history: dict = {}
    events = 0
    while net.scheduler.step():
        events += 1
        if events % 3 == 0:
            check_global_invariants(net, history)
        assert events < 1_000_000
    check_global_invariants(net, history)

    # Terminal state: exactly one leader owning everyone, rest captured.
    leaders = [
        node_id
        for node_id, node in net.nodes.items()
        if node.protocol.status is CandidateStatus.LEADER
    ]
    assert len(leaders) == 1
    winner = net.node(leaders[0]).protocol
    assert winner.domain.in_set == set(net.nodes)
    for node_id, node in net.nodes.items():
        if node_id == leaders[0]:
            continue
        assert node.protocol.status is CandidateStatus.CAPTURED


def test_forest_property_of_parent_pointers():
    # Replaying capture order: each node is captured exactly once, and
    # parent chains (origin captured-by origin) are acyclic.
    net = Network(topologies.random_connected(30, 0.15, seed=8),
                  delays=FixedDelays(0.0, 1.0))
    capture_log: list[tuple] = []

    class Logged(LeaderElection):
        def _be_captured_by(self, token):
            capture_log.append((self.api.node_id, token.candidate))
            super()._be_captured_by(token)

    net.attach(lambda api: Logged(api))
    net.start()
    net.run_to_quiescence(max_events=3_000_000)

    captured_nodes = [captured for captured, _ in capture_log]
    assert len(captured_nodes) == len(set(captured_nodes)), "double capture"
    assert len(captured_nodes) == net.n - 1

    # The capture relation is a DAG ending at the winner.
    import networkx as nx

    dag = nx.DiGraph(capture_log)
    assert nx.is_directed_acyclic_graph(dag)
