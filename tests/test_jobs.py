"""Unit tests for NCU job accounting labels."""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware import Job, JobKind, Packet


@dataclass(frozen=True)
class Tagged:
    kind: str = "my_tag"


def packet_with(payload):
    return Packet(seq=1, origin=0, header=(0,), payload=payload)


def test_packet_jobs_use_payload_kind():
    job = Job(kind=JobKind.PACKET, payload=packet_with(Tagged()))
    assert job.accounting_kind == "my_tag"


def test_packet_jobs_fall_back_to_generic_kind():
    job = Job(kind=JobKind.PACKET, payload=packet_with({"no": "kind"}))
    assert job.accounting_kind == "packet"


def test_timer_jobs_embed_their_tag():
    job = Job(kind=JobKind.TIMER, tag="heartbeat")
    assert job.accounting_kind == "timer:heartbeat"
    assert Job(kind=JobKind.TIMER).accounting_kind == "timer"


def test_start_and_link_event_kinds():
    assert Job(kind=JobKind.START).accounting_kind == "start"
    assert Job(kind=JobKind.LINK_EVENT).accounting_kind == "link_event"


def test_metric_kind_separation_end_to_end():
    from conftest import limiting_net
    from repro.network import Protocol, topologies

    net = limiting_net(topologies.line(2))

    class Sender(Protocol):
        def on_start(self, payload):
            info = self.api.active_links()[0]
            self.api.send((info.normal_at_u, 0), Tagged())

    net.attach(lambda api: Sender(api))
    net.start([0])
    net.run_to_quiescence()
    assert net.metrics.system_calls_of_kind("start") == 1
    assert net.metrics.system_calls_of_kind("my_tag") == 1
    assert net.metrics.system_calls == 2
