"""Unit tests for complexity accounting and reporting."""

from __future__ import annotations

import pytest

from repro.metrics import (
    MetricsCollector,
    format_ratio,
    format_table,
    hop_complexity,
    max_system_calls_per_node,
    message_complexity,
    system_call_complexity,
    time_units,
)


def test_counters_accumulate():
    m = MetricsCollector()
    m.count_system_call("a", "packet")
    m.count_system_call("a", "start")
    m.count_system_call("b", "packet")
    m.count_hop((0, 1))
    m.count_hop((0, 1))
    m.count_injection("a")
    m.count_copy("b")
    m.count_drop("inactive_link")
    assert m.system_calls == 3
    assert m.system_calls_at("a") == 2
    assert m.system_calls_of_kind("packet") == 2
    assert m.hops == 2
    assert m.packets_injected == 1
    assert m.copies == 1
    assert m.drops == 1


def test_snapshot_is_immutable_copy():
    m = MetricsCollector()
    m.count_system_call("a", "packet")
    snap = m.snapshot()
    m.count_system_call("a", "packet")
    assert snap.system_calls == 1
    assert m.system_calls == 2


def test_since_computes_delta():
    m = MetricsCollector()
    m.count_system_call("a", "packet")
    m.count_hop((0, 1))
    before = m.snapshot()
    m.count_system_call("b", "tour")
    m.count_hop((1, 2))
    m.count_hop((1, 2))
    delta = m.since(before)
    assert delta.system_calls == 1
    assert delta.hops == 2
    assert delta.system_calls_per_node == {"b": 1}
    assert delta.system_calls_by_kind == {"tour": 1}
    assert delta.hops_per_link == {(1, 2): 2}


def test_measures():
    m = MetricsCollector()
    for _ in range(5):
        m.count_system_call("a", "packet")
    m.count_system_call("a", "start")
    m.count_hop((0, 1))
    m.count_injection("a")
    snap = m.snapshot()
    assert system_call_complexity(snap) == 6
    assert system_call_complexity(snap, exclude_kinds=["start"]) == 5
    assert hop_complexity(snap) == 1
    assert message_complexity(snap) == 1
    assert max_system_calls_per_node(snap) == 6


def test_time_units():
    assert time_units(10.0, 2.0) == 5.0
    with pytest.raises(ValueError):
        time_units(10.0, 0.0)


def test_format_table_alignment():
    table = format_table(
        ["name", "value"],
        [["alpha", 1], ["b", 123.4567]],
        title="demo",
    )
    lines = table.splitlines()
    assert lines[0] == "demo"
    assert "name" in lines[1] and "value" in lines[1]
    assert "123.457" in lines[-1]  # default 3-decimal float format
    widths = {len(line) for line in lines[1:]}
    assert len(widths) == 1  # every row the same width


def test_format_ratio():
    assert format_ratio(6.0, 2.0) == "3.00x"
    assert format_ratio(1.0, 0.0) == "inf"
    assert format_ratio(0.0, 0.0) == "0.0x"


def test_header_ids_accounting():
    m = MetricsCollector()
    m.count_injection("a", header_len=5)
    m.count_injection("a", header_len=3)
    snap = m.snapshot()
    assert snap.header_ids == 8
    before = snap
    m.count_injection("b", header_len=2)
    assert m.since(before).header_ids == 2


def test_header_ids_end_to_end():
    from conftest import attach_recorders, limiting_net
    from repro.hardware import build_anr
    from repro.network import topologies

    net = limiting_net(topologies.line(4))
    attach_recorders(net)
    header = build_anr([0, 1, 2, 3], net.id_lookup)
    net.node(0).inject(header, "x")
    net.run_to_quiescence()
    assert net.metrics.header_ids == len(header) == 4
