"""Unit tests for failure schedules."""

from __future__ import annotations

import networkx as nx

from conftest import attach_recorders, limiting_net
from repro.network import (
    FailureKind,
    FailureSchedule,
    flapping_link,
    random_link_failures,
    topologies,
)


def test_schedule_builder_chains():
    schedule = (
        FailureSchedule()
        .fail_link(0, 1, at=1.0)
        .restore_link(0, 1, at=2.0)
        .fail_node(3, at=4.0)
    )
    assert len(schedule) == 3
    assert schedule.last_change_time == 4.0
    kinds = [a.kind for a in schedule]
    assert kinds == [FailureKind.FAIL_LINK, FailureKind.RESTORE_LINK, FailureKind.FAIL_NODE]


def test_schedule_iterates_in_time_order():
    schedule = FailureSchedule().fail_link(0, 1, at=5.0).fail_link(1, 2, at=1.0)
    times = [a.time for a in schedule]
    assert times == [1.0, 5.0]


def test_apply_executes_actions():
    net = limiting_net(topologies.ring(5))
    attach_recorders(net)
    schedule = (
        FailureSchedule()
        .fail_link(0, 1, at=1.0)
        .fail_node(3, at=2.0)
        .restore_node(3, at=3.0)
        .restore_link(0, 1, at=4.0)
    )
    schedule.apply(net)
    net.run(until=2.5)
    assert not net.link(0, 1).active
    assert not net.link(2, 3).active and not net.link(3, 4).active
    net.run_to_quiescence()
    assert all(link.active for link in net.links.values())


def test_random_link_failures_keep_connected():
    g = topologies.grid(5, 5)
    schedule = random_link_failures(g, count=8, seed=3)
    assert len(schedule) == 8
    working = nx.Graph(g)
    for action in schedule:
        working.remove_edge(*action.target)
        assert nx.is_connected(working)


def test_random_link_failures_distinct_targets():
    g = topologies.complete(8)
    schedule = random_link_failures(g, count=10, seed=0)
    targets = [frozenset(a.target) for a in schedule]
    assert len(targets) == len(set(targets))


def test_random_link_failures_stop_when_tree_remains():
    g = topologies.ring(4)  # only one removable link before it's a tree
    schedule = random_link_failures(g, count=10, seed=1)
    assert len(schedule) == 1


def test_random_link_failures_unconstrained_can_disconnect():
    g = topologies.line(4)
    schedule = random_link_failures(g, count=2, seed=0, keep_connected=False)
    assert len(schedule) == 2


def test_flapping_link_alternates():
    schedule = flapping_link(0, 1, flips=5, start=1.0, spacing=2.0)
    kinds = [a.kind for a in schedule]
    assert kinds == [
        FailureKind.FAIL_LINK,
        FailureKind.RESTORE_LINK,
        FailureKind.FAIL_LINK,
        FailureKind.RESTORE_LINK,
        FailureKind.FAIL_LINK,
    ]
    assert [a.time for a in schedule] == [1.0, 3.0, 5.0, 7.0, 9.0]
