"""Tests for tree-based aggregation in the simulator (E7-E10)."""

from __future__ import annotations

import operator

import pytest

from repro.core import (
    OptTreeBuilder,
    is_globally_sensitive,
    optimal_spanning_tree,
    run_tree_aggregation,
    shape_spanning_tree,
)
from repro.core.tree_shapes import predicted_completion, shape_catalog
from repro.network import Network, topologies
from repro.sim import FixedDelays, RandomDelays


def complete_net(n, C, P):
    return Network(topologies.complete(n), delays=FixedDelays(C, P))


@pytest.mark.parametrize("n", [2, 5, 13, 34])
@pytest.mark.parametrize("P,C", [(1.0, 0.0), (1.0, 1.0), (2.0, 1.0), (1.0, 3.0)])
def test_measured_completion_equals_theory(n, P, C):
    net = complete_net(n, C, P)
    t_opt, tree = optimal_spanning_tree(net, P, C)
    run = run_tree_aggregation(net, tree, operator.add, {i: i for i in net.nodes})
    assert run.result == sum(range(n))
    assert run.completion_time == pytest.approx(float(t_opt))


def test_aggregation_system_calls_exactly_2n_minus_1():
    # n START involvements + n-1 partial-result messages.
    n = 20
    net = complete_net(n, 1.0, 1.0)
    _, tree = optimal_spanning_tree(net, 1.0, 1.0)
    run = run_tree_aggregation(net, tree, operator.add, {i: 1 for i in net.nodes})
    assert run.system_calls == 2 * n - 1
    assert run.metrics.packets_injected == n - 1


def test_aggregation_single_node():
    net = complete_net(1, 1.0, 1.0)
    _, tree = optimal_spanning_tree(net, 1.0, 1.0)
    run = run_tree_aggregation(net, tree, operator.add, {0: 42})
    assert run.result == 42
    assert run.completion_time == pytest.approx(1.0)


@pytest.mark.parametrize("op,expected", [
    (operator.add, sum(range(10))),
    (max, 9),
    (min, 0),
    (operator.xor, 0 ^ 1 ^ 2 ^ 3 ^ 4 ^ 5 ^ 6 ^ 7 ^ 8 ^ 9),
])
def test_various_associative_commutative_ops(op, expected):
    net = complete_net(10, 1.0, 1.0)
    _, tree = optimal_spanning_tree(net, 1.0, 1.0)
    run = run_tree_aggregation(net, tree, op, {i: i for i in net.nodes})
    assert run.result == expected


def test_baseline_shapes_measured_match_predicted():
    n, P, C = 16, 1.0, 2.0
    for name, shape in shape_catalog(n).items():
        net = complete_net(n, C, P)
        tree = shape_spanning_tree(net, shape)
        run = run_tree_aggregation(net, tree, operator.add, {i: 1 for i in net.nodes})
        assert run.result == n
        assert run.completion_time == pytest.approx(
            float(predicted_completion(shape, P, C))
        ), name


def test_optimal_beats_star_under_limiting_model():
    # With C=0 the star's sequential root is maximally penalised.
    n = 32
    net_opt = complete_net(n, 0.0, 1.0)
    t_opt, tree_opt = optimal_spanning_tree(net_opt, 1.0, 0.0)
    r_opt = run_tree_aggregation(net_opt, tree_opt, operator.add, {i: 1 for i in net_opt.nodes})

    net_star = complete_net(n, 0.0, 1.0)
    star = shape_spanning_tree(net_star, shape_catalog(n)["star"])
    r_star = run_tree_aggregation(net_star, star, operator.add, {i: 1 for i in net_star.nodes})

    assert r_opt.completion_time < r_star.completion_time / 3


def test_random_delays_never_exceed_worst_case():
    # Worst-case optimality: with delays <= bounds, completion <= t_opt.
    n, P, C = 21, 1.0, 1.0
    for seed in range(5):
        net = Network(
            topologies.complete(n),
            delays=RandomDelays(hardware=C, software=P, lo_frac=0.2, seed=seed),
        )
        t_opt, tree = optimal_spanning_tree(net, P, C)
        run = run_tree_aggregation(net, tree, operator.add, {i: 1 for i in net.nodes})
        assert run.result == n
        assert run.completion_time <= float(t_opt) + 1e-9


def test_aggregation_works_on_non_complete_graph_with_tree_edges():
    # The tree-based algorithm only needs its tree edges to exist.
    g = topologies.star(6)
    net = Network(g, delays=FixedDelays(1.0, 1.0))
    from repro.core.tree_shapes import star_tree

    tree = shape_spanning_tree(net, star_tree(6))
    run = run_tree_aggregation(net, tree, operator.add, {i: i for i in net.nodes})
    assert run.result == 15


# ----------------------------------------------------------------------
# Globally sensitive functions (Section 5.1)
# ----------------------------------------------------------------------
def test_sum_max_parity_are_globally_sensitive():
    assert is_globally_sensitive(sum, [0, 1, 2], 3)
    assert is_globally_sensitive(max, [0, 1, 2], 3)
    assert is_globally_sensitive(lambda v: sum(v) % 2, [0, 1], 4)


def test_constant_function_not_globally_sensitive():
    assert not is_globally_sensitive(lambda v: 0, [0, 1], 3)


def test_projection_not_globally_sensitive():
    # f = first coordinate: other coordinates can never change it.
    assert not is_globally_sensitive(lambda v: v[0], [0, 1], 3)


def test_or_is_globally_sensitive():
    # The all-zeros vector witnesses sensitivity of OR.
    assert is_globally_sensitive(any, [False, True], 4)


def test_empty_alphabet_rejected():
    with pytest.raises(ValueError):
        is_globally_sensitive(sum, [], 2)


def test_full_sensitivity_is_strictly_stronger():
    from repro.core import is_fully_sensitive

    # Parity: every coordinate always matters.
    assert is_fully_sensitive(lambda v: sum(v) % 2, [0, 1], 3)
    # Max: globally sensitive but NOT fully (two maxima mask each other).
    assert is_globally_sensitive(max, [0, 1], 3)
    assert not is_fully_sensitive(max, [0, 1], 3)
    # Constants are neither.
    assert not is_fully_sensitive(lambda v: 0, [0, 1], 2)


def test_full_sensitivity_validates_alphabet():
    from repro.core import is_fully_sensitive

    with pytest.raises(ValueError):
        is_fully_sensitive(sum, [], 2)
