"""Tests for the ARPANET flooding baseline (E2)."""

from __future__ import annotations

from conftest import limiting_net
from repro.core import FloodingBroadcast, run_standalone_broadcast
from repro.network import topologies
from repro.sim import RandomDelays
from repro.network import Network


def flood_factory(body=None):
    return lambda api: FloodingBroadcast(api, root=0, body=body)


def test_flooding_covers_all_nodes(small_graphs):
    for g in small_graphs:
        net = limiting_net(g)
        run = run_standalone_broadcast(net, flood_factory("f"), 0)
        assert run.coverage == net.n
        assert all(v == "f" for v in net.outputs_for_key("body").values())


def test_flooding_system_calls_theta_m(small_graphs):
    # Each link delivers the message in at least one direction and at
    # most both: m <= calls <= 2m (for n > 1).
    for g in small_graphs:
        net = limiting_net(g)
        if net.n == 1:
            continue
        run = run_standalone_broadcast(net, flood_factory(), 0)
        assert net.m <= run.system_calls <= 2 * net.m


def test_flooding_on_tree_touches_each_link_once():
    net = limiting_net(topologies.complete_binary_tree(4))
    run = run_standalone_broadcast(net, flood_factory(), 0)
    assert run.system_calls == net.m  # a tree has no duplicate deliveries


def test_flooding_time_linear_on_ring():
    net = limiting_net(topologies.ring(30))
    run = run_standalone_broadcast(net, flood_factory(), 0)
    # The two wavefronts meet after ~n/2 software delays.
    assert 15.0 <= run.completion_time() <= 17.0


def test_flooding_needs_no_routing_knowledge_after_failure():
    # Unlike the planned broadcasts, flooding adapts instantly: fail a
    # link and the flood still covers everything via other routes.
    net = limiting_net(topologies.grid(4, 4))
    net.fail_link(0, 1)
    run = run_standalone_broadcast(net, flood_factory(), 0)
    assert run.coverage == net.n


def test_flooding_correct_under_random_delays():
    net = Network(
        topologies.random_connected(20, 0.2, seed=8),
        delays=RandomDelays(hardware=1.0, software=1.0, seed=5),
    )
    run = run_standalone_broadcast(net, flood_factory(), 0)
    assert run.coverage == net.n
    assert net.m <= run.system_calls <= 2 * net.m
