"""Unit and property tests for the Section 3.1 tree labelling."""

from __future__ import annotations

from hypothesis import given
from hypothesis import strategies as st

from conftest import graph_adjacency, random_tree
from repro.core import (
    check_label_growth,
    check_lemma1,
    label_tree,
    label_upper_bound,
    max_label,
)
from repro.network import bfs_tree, topologies, tree_from_parent


def test_single_node_label():
    tree = tree_from_parent(0, {0: None})
    assert label_tree(tree) == {0: 0}


def test_path_labels_are_all_zero():
    # A path has no branching: every node has at most one child, so no
    # ties ever occur and every label stays 0.
    adjacency = graph_adjacency(topologies.line(8))
    tree = bfs_tree(adjacency, 0)
    labels = label_tree(tree)
    assert set(labels.values()) == {0}


def test_star_label():
    # The hub has many children all labelled 0 -> tie -> hub label 1.
    adjacency = graph_adjacency(topologies.star(6))
    tree = bfs_tree(adjacency, 0)
    labels = label_tree(tree)
    assert labels[0] == 1
    assert all(labels[leaf] == 0 for leaf in range(1, 6))


def test_complete_binary_tree_labels_equal_height():
    # Every internal node has two equal children: label = height.
    for depth in range(5):
        adjacency = graph_adjacency(topologies.complete_binary_tree(depth))
        tree = bfs_tree(adjacency, 0)
        labels = label_tree(tree)
        assert labels[0] == depth
        assert max_label(labels) == depth


def test_caterpillar_labels_stay_low():
    # A caterpillar is path-like: the spine label never exceeds 1.
    g = topologies.caterpillar(10, 1)
    tree = bfs_tree(graph_adjacency(g), 0)
    labels = label_tree(tree)
    assert max_label(labels) <= 1


def test_unbalanced_tie_example():
    #      0
    #     / \
    #    1   2
    #   /
    #  3
    # Children of 0 have labels 0 (node 1 with one child keeps 0) and 0
    # (leaf 2): a tie, so the root is labelled 1.
    tree = tree_from_parent(0, {0: None, 1: 0, 2: 0, 3: 1})
    labels = label_tree(tree)
    assert labels == {0: 1, 1: 0, 2: 0, 3: 0}


def test_label_upper_bound_values():
    assert label_upper_bound(1) == 0
    assert label_upper_bound(2) == 1
    assert label_upper_bound(3) == 1
    assert label_upper_bound(4) == 2
    assert label_upper_bound(1023) == 9
    assert label_upper_bound(1024) == 10


@given(st.integers(min_value=1, max_value=80), st.integers(min_value=0, max_value=10**6))
def test_labels_satisfy_paper_invariants(n, seed):
    tree = random_tree(n, seed)
    labels = label_tree(tree)
    # Lemma 1: at most one child shares a node's label.
    assert check_lemma1(tree, labels)
    # Theorem 2's counting: 2^label nodes below each node.
    assert check_label_growth(tree, labels)
    # Hence the root's label is at most log2 n.
    assert max_label(labels) <= label_upper_bound(n)
    # Labels never decrease toward the root.
    for node, parent in tree.parent.items():
        if parent is not None:
            assert labels[parent] >= labels[node]
