"""Unit tests for the discrete-event scheduler."""

from __future__ import annotations

import pytest

from repro.sim import Scheduler, SimulationError


def test_events_fire_in_time_order():
    sched = Scheduler()
    fired = []
    sched.schedule(3.0, lambda: fired.append("c"))
    sched.schedule(1.0, lambda: fired.append("a"))
    sched.schedule(2.0, lambda: fired.append("b"))
    sched.run()
    assert fired == ["a", "b", "c"]
    assert sched.now == 3.0


def test_same_time_events_fire_fifo():
    sched = Scheduler()
    fired = []
    for name in "abcde":
        sched.schedule(1.0, lambda name=name: fired.append(name))
    sched.run()
    assert fired == list("abcde")


def test_priority_breaks_ties_before_insertion_order():
    sched = Scheduler()
    fired = []
    sched.schedule(1.0, lambda: fired.append("low"), priority=2)
    sched.schedule(1.0, lambda: fired.append("high"), priority=0)
    sched.run()
    assert fired == ["high", "low"]


def test_zero_delay_event_fires_after_current_instant_peers():
    sched = Scheduler()
    fired = []

    def outer():
        fired.append("outer")
        sched.schedule(0.0, lambda: fired.append("inner"))

    sched.schedule(1.0, outer)
    sched.schedule(1.0, lambda: fired.append("peer"))
    sched.run()
    assert fired == ["outer", "peer", "inner"]


def test_negative_delay_rejected():
    sched = Scheduler()
    with pytest.raises(SimulationError):
        sched.schedule(-0.1, lambda: None)


def test_schedule_at_past_rejected():
    sched = Scheduler()
    sched.schedule(5.0, lambda: None)
    sched.run()
    with pytest.raises(SimulationError):
        sched.schedule_at(1.0, lambda: None)


def test_run_until_stops_clock_at_horizon():
    sched = Scheduler()
    fired = []
    sched.schedule(1.0, lambda: fired.append(1))
    sched.schedule(10.0, lambda: fired.append(10))
    sched.run(until=5.0)
    assert fired == [1]
    assert sched.now == 5.0
    sched.run()
    assert fired == [1, 10]


def test_run_until_fires_events_exactly_at_horizon():
    sched = Scheduler()
    fired = []
    sched.schedule(5.0, lambda: fired.append("at"))
    sched.run(until=5.0)
    assert fired == ["at"]


def test_stop_when_predicate():
    sched = Scheduler()
    fired = []
    for i in range(10):
        sched.schedule(float(i + 1), lambda i=i: fired.append(i))
    sched.run(stop_when=lambda: len(fired) >= 3)
    assert fired == [0, 1, 2]


def test_max_events_guard():
    sched = Scheduler()

    def rearm():
        sched.schedule(1.0, rearm)

    sched.schedule(1.0, rearm)
    with pytest.raises(SimulationError, match="max_events"):
        sched.run(max_events=100)


def test_cancelled_events_are_skipped():
    sched = Scheduler()
    fired = []
    event = sched.schedule(1.0, lambda: fired.append("cancelled"))
    sched.schedule(2.0, lambda: fired.append("kept"))
    event.cancel()
    sched.run()
    assert fired == ["kept"]


def test_step_advances_one_event():
    sched = Scheduler()
    fired = []
    sched.schedule(1.0, lambda: fired.append(1))
    sched.schedule(2.0, lambda: fired.append(2))
    assert sched.step() is True
    assert fired == [1]
    assert sched.step() is True
    assert sched.step() is False


def test_peek_time_skips_cancelled():
    sched = Scheduler()
    event = sched.schedule(1.0, lambda: None)
    sched.schedule(2.0, lambda: None)
    event.cancel()
    assert sched.peek_time() == 2.0


def test_events_processed_counter():
    sched = Scheduler()
    for _ in range(5):
        sched.schedule(1.0, lambda: None)
    sched.run()
    assert sched.events_processed == 5


def test_reentrant_run_rejected():
    sched = Scheduler()

    def reenter():
        sched.run()

    sched.schedule(1.0, reenter)
    with pytest.raises(SimulationError, match="re-entrant"):
        sched.run()


def test_iter_steps_yields_times():
    sched = Scheduler()
    sched.schedule(1.0, lambda: None)
    sched.schedule(2.5, lambda: None)
    assert list(sched.iter_steps()) == [1.0, 2.5]
