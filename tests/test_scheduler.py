"""Unit tests for the discrete-event scheduler."""

from __future__ import annotations

import pytest

from repro.sim import Scheduler, SimulationError


def test_events_fire_in_time_order():
    sched = Scheduler()
    fired = []
    sched.schedule(3.0, lambda: fired.append("c"))
    sched.schedule(1.0, lambda: fired.append("a"))
    sched.schedule(2.0, lambda: fired.append("b"))
    sched.run()
    assert fired == ["a", "b", "c"]
    assert sched.now == 3.0


def test_same_time_events_fire_fifo():
    sched = Scheduler()
    fired = []
    for name in "abcde":
        sched.schedule(1.0, lambda name=name: fired.append(name))
    sched.run()
    assert fired == list("abcde")


def test_priority_breaks_ties_before_insertion_order():
    sched = Scheduler()
    fired = []
    sched.schedule(1.0, lambda: fired.append("low"), priority=2)
    sched.schedule(1.0, lambda: fired.append("high"), priority=0)
    sched.run()
    assert fired == ["high", "low"]


def test_zero_delay_event_fires_after_current_instant_peers():
    sched = Scheduler()
    fired = []

    def outer():
        fired.append("outer")
        sched.schedule(0.0, lambda: fired.append("inner"))

    sched.schedule(1.0, outer)
    sched.schedule(1.0, lambda: fired.append("peer"))
    sched.run()
    assert fired == ["outer", "peer", "inner"]


def test_negative_delay_rejected():
    sched = Scheduler()
    with pytest.raises(SimulationError):
        sched.schedule(-0.1, lambda: None)


def test_schedule_at_past_rejected():
    sched = Scheduler()
    sched.schedule(5.0, lambda: None)
    sched.run()
    with pytest.raises(SimulationError):
        sched.schedule_at(1.0, lambda: None)


def test_run_until_stops_clock_at_horizon():
    sched = Scheduler()
    fired = []
    sched.schedule(1.0, lambda: fired.append(1))
    sched.schedule(10.0, lambda: fired.append(10))
    sched.run(until=5.0)
    assert fired == [1]
    assert sched.now == 5.0
    sched.run()
    assert fired == [1, 10]


def test_run_until_fires_events_exactly_at_horizon():
    sched = Scheduler()
    fired = []
    sched.schedule(5.0, lambda: fired.append("at"))
    sched.run(until=5.0)
    assert fired == ["at"]


def test_stop_when_predicate():
    sched = Scheduler()
    fired = []
    for i in range(10):
        sched.schedule(float(i + 1), lambda i=i: fired.append(i))
    sched.run(stop_when=lambda: len(fired) >= 3)
    assert fired == [0, 1, 2]


def test_max_events_guard():
    sched = Scheduler()

    def rearm():
        sched.schedule(1.0, rearm)

    sched.schedule(1.0, rearm)
    with pytest.raises(SimulationError, match="max_events"):
        sched.run(max_events=100)


def test_cancelled_events_are_skipped():
    sched = Scheduler()
    fired = []
    event = sched.schedule(1.0, lambda: fired.append("cancelled"))
    sched.schedule(2.0, lambda: fired.append("kept"))
    event.cancel()
    sched.run()
    assert fired == ["kept"]


def test_step_advances_one_event():
    sched = Scheduler()
    fired = []
    sched.schedule(1.0, lambda: fired.append(1))
    sched.schedule(2.0, lambda: fired.append(2))
    assert sched.step() is True
    assert fired == [1]
    assert sched.step() is True
    assert sched.step() is False


def test_peek_time_skips_cancelled():
    sched = Scheduler()
    event = sched.schedule(1.0, lambda: None)
    sched.schedule(2.0, lambda: None)
    event.cancel()
    assert sched.peek_time() == 2.0


def test_events_processed_counter():
    sched = Scheduler()
    for _ in range(5):
        sched.schedule(1.0, lambda: None)
    sched.run()
    assert sched.events_processed == 5


def test_reentrant_run_rejected():
    sched = Scheduler()

    def reenter():
        sched.run()

    sched.schedule(1.0, reenter)
    with pytest.raises(SimulationError, match="re-entrant"):
        sched.run()


def test_iter_steps_yields_times():
    sched = Scheduler()
    sched.schedule(1.0, lambda: None)
    sched.schedule(2.5, lambda: None)
    assert list(sched.iter_steps()) == [1.0, 2.5]


# ----------------------------------------------------------------------
# Live-event accounting and observers (observability layer)
# ----------------------------------------------------------------------
def test_pending_live_excludes_cancelled():
    sched = Scheduler()
    keep = [sched.schedule(1.0, lambda: None) for _ in range(3)]
    doomed = [sched.schedule(2.0, lambda: None) for _ in range(2)]
    for event in doomed:
        event.cancel()
    assert sched.pending == 5  # cancelled events still occupy the heap
    assert sched.pending_live == 3
    keep[0].cancel()
    keep[0].cancel()  # double cancel must not double count
    assert sched.pending_live == 2


def test_pending_live_drains_to_zero():
    sched = Scheduler()
    event = sched.schedule(1.0, lambda: None)
    sched.schedule(2.0, lambda: None)
    event.cancel()
    sched.run()
    assert sched.pending == 0
    assert sched.pending_live == 0


def test_pending_live_unaffected_by_late_cancel_of_fired_event():
    sched = Scheduler()
    event = sched.schedule(1.0, lambda: None)
    sched.run()
    event.cancel()  # already fired: must not skew the live count
    sched.schedule(1.0, lambda: None)
    assert sched.pending_live == 1


def test_pending_live_with_peek_after_cancel():
    sched = Scheduler()
    event = sched.schedule(1.0, lambda: None)
    sched.schedule(2.0, lambda: None)
    event.cancel()
    assert sched.peek_time() == 2.0  # drops the cancelled head
    assert sched.pending == sched.pending_live == 1


def test_observers_see_every_fired_event():
    sched = Scheduler()
    seen = []
    sched.add_observer(lambda event: seen.append(event.time))
    sched.schedule(1.0, lambda: None)
    sched.schedule(2.0, lambda: None)
    sched.run()
    assert seen == [1.0, 2.0]


def test_observer_fires_in_step_mode_and_removal_is_idempotent():
    sched = Scheduler()
    seen = []

    def observer(event):
        seen.append(event.tag)

    sched.add_observer(observer)
    sched.add_observer(observer)  # duplicate subscription is a no-op
    sched.schedule(1.0, lambda: None, tag="a")
    sched.step()
    assert seen == ["a"]
    sched.remove_observer(observer)
    sched.remove_observer(observer)
    sched.schedule(1.0, lambda: None, tag="b")
    sched.step()
    assert seen == ["a"]


def test_observer_exceptions_propagate():
    sched = Scheduler()

    def bad(event):
        raise RuntimeError("observer blew up")

    sched.add_observer(bad)
    sched.schedule(1.0, lambda: None)
    with pytest.raises(RuntimeError, match="observer blew up"):
        sched.run()
