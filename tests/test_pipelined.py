"""Tests for the pipelined broadcast stream (E15 extension)."""

from __future__ import annotations

import math

import pytest

from repro.core.pipelined import run_pipelined_broadcast, run_stop_and_wait
from repro.network import Network, topologies
from repro.sim import FixedDelays, RandomDelays


def net_for(n, seed=None, delays=None):
    p = min(0.5, 2.5 * math.log(n) / n)
    g = topologies.random_connected(n, p, seed=seed if seed is not None else n)
    return Network(g, delays=delays or FixedDelays(0.0, 1.0))


def test_stream_delivers_every_message_to_every_node():
    net = net_for(40)
    run = run_pipelined_broadcast(net, 0, ["a", "b", "c"])
    assert run.complete
    for index in range(3):
        got = net.outputs_for_key(f"got:{index}")
        assert set(got) == set(net.nodes) - {0}


def test_stream_makespan_is_k_plus_latency():
    net = net_for(128)
    k = 16
    run = run_pipelined_broadcast(net, 0, list(range(k)))
    # One slot per message plus the path-chain latency (small constant).
    assert run.makespan <= (k - 1) + (2 + math.log2(net.n))
    assert run.makespan >= k  # can't beat one injection slot per message


def test_pipelining_beats_stop_and_wait():
    k = 12
    pipe = run_pipelined_broadcast(net_for(64), 0, list(range(k)))
    sw = run_stop_and_wait(net_for(64), 0, list(range(k)))
    assert pipe.complete and sw.complete
    assert pipe.makespan < sw.makespan / 2


def test_stream_system_calls_are_k_times_n():
    net = net_for(30)
    k = 5
    run = run_pipelined_broadcast(net, 0, list(range(k)))
    by_kind = run.metrics.system_calls_by_kind
    assert by_kind.get("stream", 0) == k * (net.n - 1)
    assert by_kind.get("stream_nudge", 0) == k - 1


def test_single_message_stream_equals_plain_broadcast():
    run = run_pipelined_broadcast(net_for(50), 0, ["only"])
    assert run.complete
    assert run.metrics.system_calls_by_kind.get("stream_nudge", 0) == 0


def test_empty_stream_is_a_no_op():
    net = net_for(10)
    run = run_pipelined_broadcast(net, 0, [])
    assert not run.complete
    assert run.metrics.packets_injected == 0


def test_stream_under_random_delays_stays_ordered():
    # FIFO links keep the stream in order even with jittered delays.
    net = net_for(25, delays=RandomDelays(hardware=0.3, software=1.0, seed=5))
    run = run_pipelined_broadcast(net, 0, list(range(6)))
    assert run.complete
    for node in net.nodes:
        if node == 0:
            continue
        arrivals = [net.output(node, f"got:{i}") for i in range(6)]
        assert arrivals == sorted(arrivals)
