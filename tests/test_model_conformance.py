"""Direct tests of the modelling statements in docs/MODEL.md."""

from __future__ import annotations

import pytest

from conftest import attach_recorders, limiting_net
from repro.hardware import build_anr
from repro.network import Network, Protocol, topologies
from repro.sim import FixedDelays, ProtocolError


def test_copy_and_normal_id_of_one_link_are_the_same_port():
    # Two sends in one involvement using the normal and the copy variant
    # of the SAME link must be rejected: one physical port.
    net = limiting_net(topologies.line(2))

    class Doubler(Protocol):
        def on_start(self, payload):
            info = self.api.active_links()[0]
            self.api.send((info.normal_at_u, 0), "one")
            self.api.send((info.copy_at_u, 0), "two")

    net.attach(lambda api: Doubler(api))
    net.start([0])
    with pytest.raises(ProtocolError, match="multicast"):
        net.run_to_quiescence()


def test_packet_arrivals_order_before_ncu_completion_at_same_instant():
    # With C=0, a packet injected at a completion instant must already
    # be queued when the NCU picks its next job — the priority rule.
    # Consequence: two back-to-back sends to the same node are served in
    # order with no idle gap.
    net = limiting_net(topologies.line(2))
    recorders = attach_recorders(net)
    header = build_anr([0, 1], net.id_lookup)
    net.node(0).inject(header, "first")
    net.node(0).inject(header, "second")
    net.run_to_quiescence()
    assert [p.payload for p in recorders[1].packets] == ["first", "second"]
    # Served at t=1 and t=2: busy period with no gap.
    assert net.scheduler.now == pytest.approx(2.0)


def test_start_jobs_are_counted_but_separable():
    net = limiting_net(topologies.line(3))
    attach_recorders(net)
    net.start()
    net.run_to_quiescence()
    snap = net.metrics.snapshot()
    assert snap.system_calls == 3
    assert snap.system_calls_by_kind == {"start": 3}


def test_sends_depart_at_end_of_service_slot():
    # A handler that sends: the packet's injection time equals the
    # handler's completion time (start + P), not its start.
    net = Network(topologies.line(2), delays=FixedDelays(0.0, 2.5))
    seen = {}

    class Echo(Protocol):
        def on_start(self, payload):
            info = self.api.active_links()[0]
            self.api.send((info.normal_at_u, 0), self.api.now)

        def on_packet(self, packet):
            seen["sent_at"] = packet.payload
            seen["received_at"] = self.api.now

    net.attach(lambda api: Echo(api))
    net.start([0])
    net.run_to_quiescence()
    assert seen["sent_at"] == pytest.approx(2.5)  # end of the START slot
    assert seen["received_at"] == pytest.approx(5.0)  # + its own P


def test_worst_case_equals_fixed_delays_for_sequential_chain():
    # Time accounting sanity: a 3-message relay chain under (C, P)
    # takes exactly 3*(C+P) + P (the initial START service).
    C, P = 1.5, 2.0
    net = Network(topologies.line(4), delays=FixedDelays(C, P))
    done = {}

    class Relay(Protocol):
        def on_start(self, payload):
            if self.api.node_id == 0:
                self._go()

        def on_packet(self, packet):
            if self.api.node_id == 3:
                done["at"] = self.api.now
            else:
                self._go()

        def _go(self):
            target = self.api.node_id + 1
            info = next(i for i in self.api.active_links() if i.v == target)
            self.api.send((info.normal_at_u, 0), "token")

    net.attach(lambda api: Relay(api))
    net.start([0])
    net.run_to_quiescence()
    assert done["at"] == pytest.approx(P + 3 * (C + P))


def test_dmax_default_covers_election_concatenations():
    net = limiting_net(topologies.line(10))
    # 2n + 2: two linear ANRs plus delivery markers.
    assert net.dmax == 2 * net.n + 2


def test_id_width_is_logarithmic_in_degree():
    import math

    for n in (4, 16, 64):
        net = limiting_net(topologies.complete(n))
        max_degree = n - 1
        assert net.id_space.k <= math.ceil(math.log2(max_degree + 1)) + 2
