"""E7-E10 — globally sensitive functions: S(t) growth, optimal trees,
and the C/P trade-off (Section 5).

* E7: C=0, P=1 — S(k) doubles (binomial trees, eq. 6);
* E8: C=1, P=1 — S(k) is Fibonacci (eq. 9/11);
* E9: C=1, P=0 — the traditional model degenerates (a star finishes any
  n at t=1), shown by simulating stars with P=0;
* E10: the trade-off study — optimal time vs. star/path/binary across
  C/P ratios, with the simulator confirming the analytic predictions
  exactly.
"""

from __future__ import annotations

import operator

from conftest import emit
from repro.analysis import fibonacci_closed_form, growth_rate, size_growth
from repro.core import (
    OptTreeBuilder,
    optimal_spanning_tree,
    run_tree_aggregation,
    shape_spanning_tree,
)
from repro.core.tree_shapes import predicted_completion, shape_catalog, star_tree
from repro.network import Network, topologies
from repro.sim import FixedDelays


def test_e7_e8_growth_tables(benchmark, capsys):
    binomial = size_growth(1, 0, 12)
    fib = size_growth(1, 1, 12)
    rows = [
        [row_b.k, row_b.size, 2 ** (row_b.k - 1), row_f.size,
         fibonacci_closed_form(row_f.k)]
        for row_b, row_f in zip(binomial, fib)
    ]
    emit(
        capsys,
        "E7/E8 — S(k) growth (paper eq. 6: 2^(k-1) for C=0,P=1; "
        "eq. 9/11: Fibonacci for C=1,P=1)",
        ["k", "S(k) C=0", "2^(k-1)", "S(k) C=1", "Binet(k)"],
        rows,
    )
    benchmark(lambda: size_growth(1, 1, 64))


def test_e9_traditional_model_degenerates(benchmark, capsys):
    # With P=0, a star computes any n in one time unit in the simulator.
    rows = []
    for n in (4, 16, 64, 256):
        net = Network(topologies.complete(n), delays=FixedDelays(1.0, 0.0))
        tree = shape_spanning_tree(net, star_tree(n))
        run = run_tree_aggregation(net, tree, operator.add, {i: 1 for i in net.nodes})
        rows.append([n, run.completion_time, run.result])
    emit(
        capsys,
        "E9 — traditional model (C=1, P=0): a star finishes any n at t=1 "
        "(paper example 2: the recursion blows up)",
        ["n", "measured_time", "result"],
        rows,
    )
    net = Network(topologies.complete(64), delays=FixedDelays(1.0, 0.0))
    tree = shape_spanning_tree(net, star_tree(64))
    benchmark(
        lambda: run_tree_aggregation(
            Network(topologies.complete(64), delays=FixedDelays(1.0, 0.0)),
            tree,
            operator.add,
            {i: 1 for i in range(64)},
        )
    )


def test_e10_tradeoff_table(benchmark, capsys):
    n, P = 64, 1
    rows = []
    for ratio in (0, 1, 2, 4, 8, 16, 64):
        C = ratio * P
        builder = OptTreeBuilder(P, C)
        t_opt, tree = builder.optimal_tree_for(n)
        shapes = shape_catalog(n)
        rows.append(
            [
                f"{ratio}:1",
                float(t_opt),
                tree.degree_of_root(),
                tree.depth(),
                float(predicted_completion(shapes["star"], P, C)),
                float(predicted_completion(shapes["binary"], P, C)),
                float(predicted_completion(shapes["path"], P, C)),
                round(growth_rate(P, C) if C or P else 0.0, 3),
            ]
        )
    emit(
        capsys,
        "E10 — optimal tree vs. fixed shapes at n=64 as C/P varies "
        "(paper Section 5: structure depends on the delay ratio; the "
        "complete graph does NOT degenerate to the traditional model)",
        ["C:P", "t_opt", "root_deg", "depth", "t_star", "t_binary", "t_path",
         "growth_rate"],
        rows,
    )
    benchmark(lambda: OptTreeBuilder(1, 4).optimal_tree_for(64))


def test_e10_simulator_confirms_theory(benchmark, capsys):
    rows = []
    for n in (13, 34, 64):
        for P, C in [(1.0, 0.0), (1.0, 1.0), (1.0, 4.0), (2.0, 1.0)]:
            net = Network(topologies.complete(n), delays=FixedDelays(C, P))
            t_opt, tree = optimal_spanning_tree(net, P, C)
            run = run_tree_aggregation(
                net, tree, operator.add, {i: i for i in net.nodes}
            )
            rows.append(
                [
                    n,
                    P,
                    C,
                    float(t_opt),
                    run.completion_time,
                    "yes" if abs(run.completion_time - float(t_opt)) < 1e-9 else "NO",
                ]
            )
    emit(
        capsys,
        "E10 — simulator vs. OT(t) theory (measured completion == t_opt)",
        ["n", "P", "C", "t_opt", "measured", "exact"],
        rows,
    )

    def simulate_once():
        net = Network(topologies.complete(34), delays=FixedDelays(1.0, 1.0))
        _, tree = optimal_spanning_tree(net, 1.0, 1.0)
        run_tree_aggregation(net, tree, operator.add, {i: 1 for i in net.nodes})

    benchmark(simulate_once)


def test_e14_appendix_causal_analysis(benchmark, capsys):
    """The appendix, executable: strip non-causal traffic from a run.

    A chatty aggregation (every partial acknowledged) is recorded, the
    causal messages are computed by the appendix's recursive definition,
    and the Lemma A.3 last-causal tree is extracted — it must equal the
    underlying optimal tree, and the tree-based algorithm over it is at
    least as fast as the observed run.
    """
    import operator as _op

    from repro.analysis.causality import (
        CausalityRecorder,
        last_causal_tree,
        message_counts,
    )
    from repro.core import TreeAggregation
    from repro.core.globalfn import ChattyTreeAggregation

    rows = []
    for n in (8, 21, 55):
        for cls, label in [(TreeAggregation, "tree-based"),
                           (ChattyTreeAggregation, "chatty")]:
            net = Network(topologies.complete(n), delays=FixedDelays(1.0, 1.0))
            _, tree = optimal_spanning_tree(net, 1.0, 1.0)
            recorder = CausalityRecorder()
            inputs = {i: 1 for i in net.nodes}
            net.attach(
                recorder.wrap(
                    lambda api, cls=cls, tree=tree, inputs=inputs: cls(
                        api, tree=tree, op=_op.add, inputs=inputs,
                        ids=net.id_lookup,
                    )
                )
            )
            net.start()
            net.run_to_quiescence()
            total, causal = message_counts(recorder.log, tree.root)
            extracted = last_causal_tree(recorder.log, tree.root)
            rows.append(
                [n, label, total, causal,
                 "yes" if extracted.parent == dict(tree.parent) else "NO"]
            )
    emit(
        capsys,
        "E14 — appendix (Theorem 6): causal messages and the last-causal "
        "tree.  The chatty run's ACKs are provably non-causal; the "
        "extracted tree always equals the underlying optimal tree",
        ["n", "algorithm", "messages", "causal", "tree_recovered"],
        rows,
    )

    def analyse_once():
        net = Network(topologies.complete(21), delays=FixedDelays(1.0, 1.0))
        _, tree = optimal_spanning_tree(net, 1.0, 1.0)
        recorder = CausalityRecorder()
        inputs = {i: 1 for i in net.nodes}
        net.attach(
            recorder.wrap(
                lambda api: ChattyTreeAggregation(
                    api, tree=tree, op=_op.add, inputs=inputs, ids=net.id_lookup
                )
            )
        )
        net.start()
        net.run_to_quiescence()
        last_causal_tree(recorder.log, tree.root)

    benchmark(analyse_once)
