"""E5/E6 — leader election: the new O(n) algorithm vs. ring classics.

Paper claims (Section 4):

* new algorithm: at most 6n tour/return direct messages (Theorem 5),
  O(n) time;
* traditional algorithms cost Ω(n log n) system calls under the new
  measure as well (every hop of a classic ring algorithm is processed
  in software).

The series prints tour+return calls against the 6n bound across
topologies and sizes, and the head-to-head scaling against
Chang–Roberts (worst-case id arrangement) and Hirschberg–Sinclair.
"""

from __future__ import annotations

import math

from conftest import emit
from repro.core import ChangRoberts, HirschbergSinclair, LeaderElection
from repro.network import Network, topologies
from repro.sim import FixedDelays


def run_election(g, factory, starters=None):
    net = Network(g, delays=FixedDelays(0.0, 1.0))
    net.attach(factory)
    net.start(starters)
    net.run_to_quiescence(max_events=5_000_000)
    flags = net.outputs_for_key("is_leader")
    assert sum(1 for v in flags.values() if v) == 1
    return net


def tour_return(net):
    snap = net.metrics.snapshot()
    return snap.system_calls_by_kind.get("tour", 0) + snap.system_calls_by_kind.get(
        "return", 0
    )




def test_e5_theorem5_bound_across_topologies(benchmark, capsys):
    rows = []
    for name, g in [
        ("line", topologies.line(64)),
        ("ring", topologies.ring(64)),
        ("grid", topologies.grid(8, 8)),
        ("hypercube", topologies.hypercube(6)),
        ("complete", topologies.complete(64)),
        ("random", topologies.random_connected(64, 0.1, seed=3)),
    ]:
        net = run_election(g, lambda api: LeaderElection(api))
        n = net.n
        rows.append(
            [name, n, tour_return(net), 6 * n, net.metrics.system_calls,
             net.scheduler.now]
        )
    emit(
        capsys,
        "E5 — election at n=64 (paper: tour+return <= 6n, Theorem 5)",
        ["topology", "n", "tour+return", "6n", "total_sc", "time"],
        rows,
    )
    g = topologies.random_connected(64, 0.1, seed=3)
    benchmark(lambda: run_election(g, lambda api: LeaderElection(api)))


def test_e5_e6_scaling_on_rings(benchmark, capsys):
    import random

    rows = []
    for n in (8, 16, 32, 64, 128, 256):
        rng = random.Random(n)
        perm = list(range(n))
        rng.shuffle(perm)
        net_new = run_election(topologies.ring(n), lambda api: LeaderElection(api))
        net_cr = run_election(
            topologies.ring(n), lambda api: ChangRoberts(api, direction=-1)
        )
        net_hs = run_election(
            topologies.ring(n),
            lambda api: HirschbergSinclair(api, priority=perm[api.node_id]),
        )
        rows.append(
            [
                n,
                tour_return(net_new),
                6 * n,
                net_new.metrics.system_calls,
                net_cr.metrics.system_calls,
                net_hs.metrics.system_calls,
                round(n * math.log2(n)),
            ]
        )
    emit(
        capsys,
        "E5/E6 — election system calls on rings "
        "(paper: new O(n); traditional Omega(n log n) under the new measure; "
        "CR worst case Theta(n^2))",
        ["n", "new_tour+ret", "6n", "new_total", "CR_worst", "HS", "n*log2n"],
        rows,
    )
    benchmark(
        lambda: run_election(topologies.ring(64), lambda api: LeaderElection(api))
    )


def test_e5_initiator_sensitivity(benchmark, capsys):
    g = topologies.random_connected(96, 0.08, seed=7)
    rows = []
    for label, starters in [
        ("single", [0]),
        ("quarter", list(range(0, 96, 4))),
        ("all", None),
    ]:
        net = run_election(g, lambda api: LeaderElection(api), starters)
        rows.append([label, tour_return(net), net.metrics.system_calls,
                     net.scheduler.now])
    emit(
        capsys,
        "E5 — sensitivity to the set of initiators (n=96 random graph)",
        ["initiators", "tour+return", "total_sc", "time"],
        rows,
    )
    benchmark(lambda: run_election(g, lambda api: LeaderElection(api), [0]))


def test_e5_tour_calls_distribution(benchmark, capsys):
    """Theorem 5 as a distribution: tour+return calls per node across
    random topologies and timings never reach the 6n ceiling."""
    from repro.analysis.montecarlo import SUMMARY_HEADERS, sweep
    from repro.sim import RandomDelays

    def calls_per_node(seed: int) -> float:
        g = topologies.random_connected(48, 0.1, seed=seed)
        net = Network(
            g, delays=RandomDelays(hardware=0.3, software=1.0, seed=seed)
        )
        net.attach(lambda api: LeaderElection(api))
        net.start()
        net.run_to_quiescence(max_events=5_000_000)
        return tour_return(net) / net.n

    summary = sweep(calls_per_node, 20)
    emit(
        capsys,
        "E5 — distribution of tour+return system calls per node over 20 "
        "random (graph, timing) seeds at n=48 (Theorem 5 ceiling: 6.0)",
        ["runs"] + SUMMARY_HEADERS,
        [[summary.count] + summary.row()],
    )
    assert summary.maximum <= 6.0
    benchmark(lambda: calls_per_node(0))
