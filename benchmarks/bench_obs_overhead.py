"""E16 — the zero-overhead guarantee for dormant observability hooks.

PR 1 added three instrumentation surfaces to the hot path:

* the scheduler's observer hook (one truthiness check per fired event),
* the scheduler's live-event accounting (an ``on_cancel`` slot set at
  push time so ``pending_live`` is O(1)),
* the network probe checks in the NCU and SS (one ``is not None`` per
  system call / hop).

This bench proves the guarantee the instrumentation was designed
around: with nothing installed, the event loop stays within noise
(≤ 5%) of the seed scheduler loop.  ``SeedScheduler`` below is a
faithful replica of the seed repo's run loop — same heap, same Event
objects, no hooks — so the comparison isolates exactly the code added
for observability.  A third measurement with a live observer installed
reports (but does not bound) the enabled cost.

Methodology: the workload is 64 self-rescheduling event chains (the
shape real protocol runs produce) driven to ~40k events; variants are
interleaved across repeats and the per-variant minimum is compared,
which cancels machine-load drift.
"""

from __future__ import annotations

import heapq
import timeit

from conftest import emit

from repro.sim.events import Event
from repro.sim.scheduler import Scheduler

CHAINS = 64
EVENTS_PER_CHAIN = 600
REPEATS = 7
TOLERANCE = 1.05


class SeedScheduler:
    """Verbatim replica of the seed repo's scheduler (pre-observability).

    Same heap, same Event objects, same per-event ``until`` /
    ``max_events`` / ``stop_when`` checks and ``_drop_cancelled`` method
    call the seed's run loop performed — but none of the hooks — so the
    comparison isolates exactly the code added for observability.
    """

    def __init__(self) -> None:
        self._queue: list[Event] = []
        self._now = 0.0
        self._events_processed = 0
        self._running = False

    @property
    def now(self) -> float:
        return self._now

    def schedule(self, delay, action, *, priority=0, tag=""):
        event = Event(time=self._now + delay, priority=priority,
                      action=action, tag=tag)
        heapq.heappush(self._queue, event)
        return event

    def run(self, *, until=None, max_events=None, stop_when=None):
        self._running = True
        fired = 0
        try:
            while True:
                self._drop_cancelled()
                if not self._queue:
                    break
                event = self._queue[0]
                if until is not None and event.time > until:
                    self._now = max(self._now, until)
                    break
                heapq.heappop(self._queue)
                self._now = event.time
                event.action()
                self._events_processed += 1
                fired += 1
                if max_events is not None and fired >= max_events:
                    raise RuntimeError(f"exceeded max_events={max_events}")
                if stop_when is not None and stop_when():
                    break
        finally:
            self._running = False
        return self._now

    def _drop_cancelled(self) -> None:
        while self._queue and self._queue[0].cancelled:
            heapq.heappop(self._queue)


def drive(scheduler) -> int:
    """Run the chain workload on one scheduler; returns events fired."""
    remaining = [EVENTS_PER_CHAIN] * CHAINS

    def make_step(chain: int):
        def step() -> None:
            remaining[chain] -= 1
            if remaining[chain] > 0:
                scheduler.schedule(1.0, step, priority=chain % 3)
        return step

    for chain in range(CHAINS):
        scheduler.schedule(float(chain % 5), make_step(chain))
    scheduler.run()
    return CHAINS * EVENTS_PER_CHAIN


def measure(factory) -> float:
    """Seconds for one workload run (fresh scheduler per call)."""
    return timeit.timeit(lambda: drive(factory()), number=1)


def hooked_disabled() -> Scheduler:
    return Scheduler()


def hooked_enabled() -> Scheduler:
    sched = Scheduler()
    counters = {"events": 0}

    def observer(event: Event) -> None:
        counters["events"] += 1

    sched.add_observer(observer)
    return sched


def test_disabled_hooks_within_noise_of_seed_loop(capsys):
    variants = {
        "seed loop (replica)": SeedScheduler,
        "hooks present, disabled": hooked_disabled,
        "observer installed": hooked_enabled,
    }
    # Warm-up (bytecode, allocator, branch caches) before timing.
    for factory in variants.values():
        measure(factory)
    best = {name: float("inf") for name in variants}
    for _ in range(REPEATS):
        for name, factory in variants.items():
            best[name] = min(best[name], measure(factory))

    events = CHAINS * EVENTS_PER_CHAIN
    seed = best["seed loop (replica)"]
    rows = [
        [name, seconds * 1e9 / events, seconds / seed]
        for name, seconds in best.items()
    ]
    emit(
        capsys,
        "E16: observability hook overhead on the scheduler loop "
        f"({events} events, best of {REPEATS})",
        ["variant", "ns_per_event", "vs_seed"],
        rows,
    )
    ratio = best["hooks present, disabled"] / seed
    assert ratio <= TOLERANCE, (
        f"dormant observability hooks cost {ratio:.3f}x the seed loop "
        f"(budget {TOLERANCE}x); the zero-overhead guarantee is broken"
    )


if __name__ == "__main__":  # pragma: no cover - manual runs
    import pytest
    import sys

    sys.exit(pytest.main([__file__, "-x", "-q", "-s"]))
