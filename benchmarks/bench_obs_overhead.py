"""E16 — the zero-overhead guarantee for dormant observability hooks.

PR 1 added three instrumentation surfaces to the hot path:

* the scheduler's observer hook (one truthiness check per fired event),
* the scheduler's live-event accounting (an ``on_cancel`` slot set at
  push time so ``pending_live`` is O(1)),
* the network probe checks in the NCU and SS (one ``is not None`` per
  system call / hop).

This bench proves the guarantee the instrumentation was designed
around: with nothing installed, the event loop stays within noise
(≤ 5%) of the seed scheduler loop.  ``SeedScheduler`` below is a
faithful replica of the seed repo's run loop — same heap, same Event
objects, no hooks — so the comparison isolates exactly the code added
for observability.  A third measurement with a live observer installed
reports (but does not bound) the enabled cost.

Methodology: the workload is 64 self-rescheduling event chains (the
shape real protocol runs produce) driven to ~40k events; variants are
interleaved across repeats and the per-variant minimum is compared,
which cancels machine-load drift.
"""

from __future__ import annotations

import heapq
import timeit
from contextlib import contextmanager

from conftest import emit

from repro.hardware.ncu import NCU
from repro.hardware.switch import SwitchingSubsystem
from repro.sim.errors import SimulationError
from repro.sim.events import Event
from repro.sim.scheduler import Scheduler
from repro.sim.trace import TraceKind

CHAINS = 64
EVENTS_PER_CHAIN = 600
REPEATS = 7
TOLERANCE = 1.05


class SeedScheduler:
    """Verbatim replica of the seed repo's scheduler (pre-observability).

    Same heap, same Event objects, same per-event ``until`` /
    ``max_events`` / ``stop_when`` checks and ``_drop_cancelled`` method
    call the seed's run loop performed — but none of the hooks — so the
    comparison isolates exactly the code added for observability.
    """

    def __init__(self) -> None:
        self._queue: list[Event] = []
        self._now = 0.0
        self._seq = 0
        self._events_processed = 0
        self._running = False

    @property
    def now(self) -> float:
        return self._now

    def schedule(self, delay, action, *, priority=0, tag=""):
        # The seq counter keeps FIFO order among equal (time, priority)
        # events, as the seed's module-global event counter did.
        seq = self._seq
        self._seq = seq + 1
        event = Event(time=self._now + delay, priority=priority, seq=seq,
                      action=action, tag=tag)
        heapq.heappush(self._queue, event)
        return event

    def run(self, *, until=None, max_events=None, stop_when=None):
        self._running = True
        fired = 0
        try:
            while True:
                self._drop_cancelled()
                if not self._queue:
                    break
                event = self._queue[0]
                if until is not None and event.time > until:
                    self._now = max(self._now, until)
                    break
                heapq.heappop(self._queue)
                self._now = event.time
                event.action()
                self._events_processed += 1
                fired += 1
                if max_events is not None and fired >= max_events:
                    raise RuntimeError(f"exceeded max_events={max_events}")
                if stop_when is not None and stop_when():
                    break
        finally:
            self._running = False
        return self._now

    def _drop_cancelled(self) -> None:
        while self._queue and self._queue[0].cancelled:
            heapq.heappop(self._queue)


def drive(scheduler) -> int:
    """Run the chain workload on one scheduler; returns events fired."""
    remaining = [EVENTS_PER_CHAIN] * CHAINS

    def make_step(chain: int):
        def step() -> None:
            remaining[chain] -= 1
            if remaining[chain] > 0:
                scheduler.schedule(1.0, step, priority=chain % 3)
        return step

    for chain in range(CHAINS):
        scheduler.schedule(float(chain % 5), make_step(chain))
    scheduler.run()
    return CHAINS * EVENTS_PER_CHAIN


def measure(factory) -> float:
    """Seconds for one workload run (fresh scheduler per call)."""
    return timeit.timeit(lambda: drive(factory()), number=1)


def hooked_disabled() -> Scheduler:
    return Scheduler()


def hooked_enabled() -> Scheduler:
    sched = Scheduler()
    counters = {"events": 0}

    def observer(event: Event) -> None:
        counters["events"] += 1

    sched.add_observer(observer)
    return sched


def test_disabled_hooks_within_noise_of_seed_loop(capsys):
    variants = {
        "seed loop (replica)": SeedScheduler,
        "hooks present, disabled": hooked_disabled,
        "observer installed": hooked_enabled,
    }
    # Warm-up (bytecode, allocator, branch caches) before timing.
    for factory in variants.values():
        measure(factory)
    best = {name: float("inf") for name in variants}
    for _ in range(REPEATS):
        for name, factory in variants.items():
            best[name] = min(best[name], measure(factory))

    events = CHAINS * EVENTS_PER_CHAIN
    seed = best["seed loop (replica)"]
    rows = [
        [name, seconds * 1e9 / events, seconds / seed]
        for name, seconds in best.items()
    ]
    emit(
        capsys,
        "E16: observability hook overhead on the scheduler loop "
        f"({events} events, best of {REPEATS})",
        ["variant", "ns_per_event", "vs_seed"],
        rows,
    )
    ratio = best["hooks present, disabled"] / seed
    assert ratio <= TOLERANCE, (
        f"dormant observability hooks cost {ratio:.3f}x the seed loop "
        f"(budget {TOLERANCE}x); the zero-overhead guarantee is broken"
    )


# ----------------------------------------------------------------------
# E16b — dormant perf counters on the forwarding hot path
# ----------------------------------------------------------------------
# PR 6 added perf-counter hooks (``perf = x.perf; if perf is not None``)
# to the hot functions: Scheduler._push (push count — the shared enqueue
# fast path behind schedule/schedule_at), Scheduler.run (pop count +
# wall timer + cancelled-drop count) and SwitchingSubsystem._forward
# (hop count), plus a timed region in NCU._complete.  The replicas below
# are those functions with exactly the perf lines removed — the same
# methodology as SeedScheduler above, applied per-function so the gate
# isolates precisely the code this PR added.  The classes are patched
# *before* the network is built because SS port tables capture bound
# ``_deliver`` methods (and the NCU its ``_complete_cb``) at build time.

FWD_LENGTH = 64
FWD_PACKETS = 200
FWD_REPEATS = 7


def _push_noperf(self, time, action, priority, tag, args):
    seq = self._seq
    self._seq = seq + 1
    event = Event.__new__(Event)
    event.time = time
    event.priority = priority
    event.seq = seq
    event.action = action
    event.args = args
    event.tag = tag
    event.cancelled = False
    event.on_cancel = self._note_cancelled_cb
    heapq.heappush(self._queue, (time, priority, seq, event))
    return event


def _run_noperf(self, *, until=None, max_events=None, stop_when=None):
    if self._running:
        raise SimulationError("scheduler is already running (re-entrant run)")
    self._running = True
    fired = 0
    observers = self._observers
    queue = self._queue
    pop = heapq.heappop
    try:
        while True:
            while queue and queue[0][3].cancelled:
                pop(queue)
                self._cancelled_pending -= 1
            if not queue:
                break
            entry = queue[0]
            time = entry[0]
            if until is not None and time > until:
                self._now = max(self._now, until)
                break
            pop(queue)
            event = entry[3]
            event.on_cancel = None
            self._now = time
            event.action(*event.args)
            self._events_processed += 1
            if observers:
                for observer in observers:
                    observer(event)
            fired += 1
            if max_events is not None and fired >= max_events:
                raise SimulationError(
                    f"exceeded max_events={max_events}; "
                    "a protocol is probably not terminating"
                )
            if stop_when is not None and stop_when():
                break
    finally:
        self._running = False
    return self._now


def _forward_noperf(self, packet, port):
    # The flow-control check stays in this replica: E16b isolates the
    # perf lines only (E16c below isolates the fc check the same way).
    net = self._node.net
    me = self._node.node_id
    link, other_id, receiving_normal, deliver = port
    if not link.active:
        net.metrics.count_drop("inactive_link")
        trace = net.trace
        if trace.enabled:
            trace.record(
                net.scheduler.now,
                TraceKind.PACKET_DROPPED,
                me,
                packet=packet.seq,
                reason="inactive_link",
                link=link.key,
            )
        return

    fc = link.fc
    if fc is not None:
        link.fc_forward(me, packet, port)
        return

    now = net.scheduler.now
    delay = net.delays.hardware_delay(link.key, packet.seq)
    arrival = link.fifo_arrival(me, now + delay)
    packet.hops += 1
    packet._reverse.append(receiving_normal)
    net.metrics.count_hop(link.key)
    probe = net.probe
    if probe is not None:
        probe.hop(link.key, now)
    trace = net.trace
    if trace.enabled:
        trace.record(
            now,
            TraceKind.PACKET_HOP,
            me,
            packet=packet.seq,
            link=link.key,
            to=other_id,
        )
    net.scheduler.schedule_at(arrival, deliver, 0, "hop", (packet, link))


def _complete_noperf(self, job):
    net = self._node.net
    assert self.handler is not None
    ports = self._ports_scratch
    if ports is None:
        ports = self._ports_scratch = set()
    else:
        ports.clear()
    self.ports_used_this_call = ports
    try:
        self.handler(self._node.api, job)
    finally:
        self.ports_used_this_call = None
        trace = net.trace
        if trace.enabled:
            trace.record(
                net.scheduler.now,
                TraceKind.NCU_JOB_END,
                self._node.node_id,
                job=job.accounting_kind,
            )
        probe = net.probe
        if probe is not None:
            probe.ncu_job_end(
                self._node.node_id, job.accounting_kind, net.scheduler.now
            )
        self._busy = False
        if self._queue:
            self._begin_next()


_STRIPPED = (
    (Scheduler, "_push", _push_noperf),
    (Scheduler, "run", _run_noperf),
    (SwitchingSubsystem, "_forward", _forward_noperf),
    (NCU, "_complete", _complete_noperf),
)


@contextmanager
def _perf_hooks_stripped():
    saved = [(cls, name, cls.__dict__[name]) for cls, name, _fn in _STRIPPED]
    for cls, name, fn in _STRIPPED:
        setattr(cls, name, fn)
    try:
        yield
    finally:
        for cls, name, fn in saved:
            setattr(cls, name, fn)


def forwarding_workload() -> int:
    """The hotpath_forwarding bench shape; returns events processed."""
    from repro.hardware.anr import build_anr
    from repro.network.builder import from_spec
    from repro.network.protocol import Protocol
    from repro.sim import FixedDelays

    net = from_spec(f"line:{FWD_LENGTH}", delays=FixedDelays(0.1, 1.0))
    net.attach(lambda api: Protocol(api))
    header = build_anr(list(range(FWD_LENGTH)), net.id_lookup)
    source = net.node(0)
    for i in range(FWD_PACKETS):
        net.scheduler.schedule_at(
            0.01 * i, source.inject, args=(header, i), tag="inject"
        )
    net.run_to_quiescence(max_events=10_000_000)
    return net.scheduler.events_processed


def _measure_forwarding(stripped: bool) -> float:
    if stripped:
        with _perf_hooks_stripped():
            return timeit.timeit(forwarding_workload, number=1)
    return timeit.timeit(forwarding_workload, number=1)


def test_dormant_perf_counters_within_noise_on_forwarding(capsys):
    variants = {
        "perf hooks stripped (replica)": True,
        "perf hooks present, dormant": False,
    }
    events = forwarding_workload()  # also serves as warm-up
    for stripped in variants.values():
        _measure_forwarding(stripped)
    best = {name: float("inf") for name in variants}
    for _ in range(FWD_REPEATS):
        for name, stripped in variants.items():
            best[name] = min(best[name], _measure_forwarding(stripped))

    base = best["perf hooks stripped (replica)"]
    rows = [
        [name, seconds * 1e9 / events, seconds / base]
        for name, seconds in best.items()
    ]
    emit(
        capsys,
        "E16b: dormant perf-counter overhead on hotpath_forwarding "
        f"({events} events, best of {FWD_REPEATS})",
        ["variant", "ns_per_event", "vs_stripped"],
        rows,
    )
    ratio = best["perf hooks present, dormant"] / base
    assert ratio <= TOLERANCE, (
        f"dormant perf counters cost {ratio:.3f}x the stripped hot path "
        f"(budget {TOLERANCE}x); the ≤5% attribution guarantee is broken"
    )


# ----------------------------------------------------------------------
# E16c — dormant flow control on the forwarding hot path
# ----------------------------------------------------------------------
# The congestion PR added credit-based flow control to ``Link``; the
# free-hardware forwarding path pays one ``fc = link.fc`` attribute load
# plus an ``is not None`` check per hop when no limits are configured
# (the default).  ``_forward_nofc`` below is ``_forward`` with exactly
# those lines removed — the perf lines stay, so the gate isolates
# precisely the flow-control check.


def _forward_nofc(self, packet, port):
    net = self._node.net
    me = self._node.node_id
    link, other_id, receiving_normal, deliver = port
    if not link.active:
        net.metrics.count_drop("inactive_link")
        trace = net.trace
        if trace.enabled:
            trace.record(
                net.scheduler.now,
                TraceKind.PACKET_DROPPED,
                me,
                packet=packet.seq,
                reason="inactive_link",
                link=link.key,
            )
        return

    now = net.scheduler.now
    delay = net.delays.hardware_delay(link.key, packet.seq)
    arrival = link.fifo_arrival(me, now + delay)
    packet.hops += 1
    packet._reverse.append(receiving_normal)
    net.metrics.count_hop(link.key)
    probe = net.probe
    if probe is not None:
        probe.hop(link.key, now)
    perf = net.perf
    if perf is not None:
        perf.ss_hops += 1
    trace = net.trace
    if trace.enabled:
        trace.record(
            now,
            TraceKind.PACKET_HOP,
            me,
            packet=packet.seq,
            link=link.key,
            to=other_id,
        )
    net.scheduler.schedule_at(
        arrival, deliver, priority=0, tag="hop", args=(packet, link)
    )


@contextmanager
def _fc_hooks_stripped():
    saved = SwitchingSubsystem.__dict__["_forward"]
    SwitchingSubsystem._forward = _forward_nofc
    try:
        yield
    finally:
        SwitchingSubsystem._forward = saved


def _measure_forwarding_nofc(stripped: bool) -> float:
    if stripped:
        with _fc_hooks_stripped():
            return timeit.timeit(forwarding_workload, number=1)
    return timeit.timeit(forwarding_workload, number=1)


def test_dormant_flow_control_within_noise_on_forwarding(capsys):
    variants = {
        "fc check stripped (replica)": True,
        "fc check present, dormant": False,
    }
    events = forwarding_workload()  # also serves as warm-up
    for stripped in variants.values():
        _measure_forwarding_nofc(stripped)
    best = {name: float("inf") for name in variants}
    for _ in range(FWD_REPEATS):
        for name, stripped in variants.items():
            best[name] = min(best[name], _measure_forwarding_nofc(stripped))

    base = best["fc check stripped (replica)"]
    rows = [
        [name, seconds * 1e9 / events, seconds / base]
        for name, seconds in best.items()
    ]
    emit(
        capsys,
        "E16c: dormant flow-control overhead on hotpath_forwarding "
        f"({events} events, best of {FWD_REPEATS})",
        ["variant", "ns_per_event", "vs_stripped"],
        rows,
    )
    ratio = best["fc check present, dormant"] / base
    assert ratio <= TOLERANCE, (
        f"the dormant flow-control check costs {ratio:.3f}x the stripped "
        f"hot path (budget {TOLERANCE}x); free hardware must stay free"
    )


if __name__ == "__main__":  # pragma: no cover - manual runs
    import pytest
    import sys

    sys.exit(pytest.main([__file__, "-x", "-q", "-s"]))
