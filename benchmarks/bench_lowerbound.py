"""E3 — the Ω(log n) one-way broadcast lower bound (Theorem 3).

The series brackets the optimum number of one-way rounds on complete
binary trees of growing depth:

* ``lower``  — Theorem 3's adversary bound ceil((D-5)/5);
* ``exact``  — exhaustive optimum (small depths only);
* ``greedy`` — the greedy schedule's rounds (an upper bound);
* ``bpaths`` — what the branching-paths broadcast achieves (= D here:
  on complete binary trees every decomposed path is a single edge).

The shape to check: all columns grow linearly in D = log2(n+1), i.e.
the one-way broadcast time is Θ(log n), matching Theorems 2 and 3.
The witness column confirms the adversary's ``V_t`` construction
succeeds against the greedy schedule (2^t uninformed nodes at depth 5t).
"""

from __future__ import annotations

from conftest import emit
from repro.core import (
    coverage_rounds,
    decompose_paths,
    exhaustive_min_rounds,
    greedy_schedule,
    max_chain_depth,
    theorem3_lower_bound,
    witness_uninformed_sets,
)
from repro.network import bfs_tree, topologies


def cbt_tree(depth):
    g = topologies.complete_binary_tree(depth)
    adjacency = {u: tuple(sorted(g.neighbors(u))) for u in g}
    return bfs_tree(adjacency, 0)


def test_e3_lower_bound_series(benchmark, capsys):
    rows = []
    for depth in range(1, 13):
        tree = cbt_tree(depth)
        n = len(tree)
        schedule = greedy_schedule(tree)
        greedy_rounds = coverage_rounds(tree, schedule)
        bpaths_rounds = max_chain_depth(decompose_paths(tree))
        exact = exhaustive_min_rounds(tree) if depth <= 3 else "-"
        witnesses = witness_uninformed_sets(tree, schedule)
        rows.append(
            [
                depth,
                n,
                theorem3_lower_bound(depth),
                exact,
                greedy_rounds,
                bpaths_rounds,
                "/".join(str(len(w)) for w in witnesses) or "-",
            ]
        )
    emit(
        capsys,
        "E3 — one-way broadcast rounds on complete binary trees "
        "(paper: Omega(log n) lower bound, log n upper bound)",
        ["depth", "n", "thm3_lower", "exact_opt", "greedy", "bpaths", "witness|V_t|"],
        rows,
    )
    tree = cbt_tree(10)
    benchmark(lambda: coverage_rounds(tree, greedy_schedule(tree)))
