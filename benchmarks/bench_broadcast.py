"""E1/E2 — topology broadcast: branching paths vs. flooding vs. direct.

Paper claims (Section 3):

* branching-paths broadcast: exactly ``n`` system calls and at most
  ``log2 n`` time units per broadcast;
* ARPANET flooding: ``O(m)`` system calls, ``O(n)`` time;
* naive direct messages: ``O(n)`` system calls *and* ``O(n)`` time.

The tables print measured system calls / time units for each scheme
across sizes and topology families; the shape to check is flooding's
``m/n`` factor in calls and the exponential time gap of the log-depth
scheme.
"""

from __future__ import annotations

import math

from conftest import emit
from repro.core import (
    BranchingPathsBroadcast,
    DirectBroadcast,
    FloodingBroadcast,
    run_standalone_broadcast,
)
from repro.network import Network, topologies
from repro.sim import FixedDelays


def run_scheme(g, scheme: str):
    net = Network(g, delays=FixedDelays(0.0, 1.0))
    adjacency = net.adjacency()
    if scheme == "bpaths":
        factory = lambda api: BranchingPathsBroadcast(
            api, root=0, adjacency=adjacency, ids=net.id_lookup
        )
    elif scheme == "direct":
        factory = lambda api: DirectBroadcast(
            api, root=0, adjacency=adjacency, ids=net.id_lookup
        )
    else:
        factory = lambda api: FloodingBroadcast(api, root=0)
    run = run_standalone_broadcast(net, factory, 0)
    assert run.coverage == net.n
    return net, run


SIZES = [15, 63, 255, 1023]


def test_e1_broadcast_scaling_table(benchmark, capsys):
    """System calls and time vs. n on sparse random graphs."""
    rows = []
    for n in SIZES:
        p = min(0.5, 2.5 * math.log(n) / n)  # safely above the connectivity threshold
        g = topologies.random_connected(n, p, seed=n)
        measurements = {}
        for scheme in ("bpaths", "flood", "direct"):
            net, run = run_scheme(g, scheme)
            measurements[scheme] = (run.system_calls, run.completion_time())
        m = net.m
        rows.append(
            [
                n,
                m,
                measurements["bpaths"][0],
                measurements["flood"][0],
                measurements["direct"][0],
                measurements["bpaths"][1],
                measurements["flood"][1],
                measurements["direct"][1],
                1 + math.floor(math.log2(n)),
            ]
        )
    emit(
        capsys,
        "E1/E2 — broadcast on random graphs "
        "(paper: bpaths n calls & <=log2 n time; flood O(m) & O(n); direct O(n) & O(n))",
        ["n", "m", "sc_bpaths", "sc_flood", "sc_direct",
         "t_bpaths", "t_flood", "t_direct", "log2n+1"],
        rows,
    )
    g = topologies.random_connected(255, 2.5 * math.log(255) / 255, seed=255)
    benchmark(lambda: run_scheme(g, "bpaths"))


def test_e1_broadcast_topology_families_table(benchmark, capsys):
    """The same comparison across topology families at n ~ 255."""
    families = {
        "ring": topologies.ring(256),
        "grid": topologies.grid(16, 16),
        "hypercube": topologies.hypercube(8),
        "binary-tree": topologies.complete_binary_tree(7),
        "caterpillar": topologies.caterpillar(128, 1),
        "dense-rand": topologies.random_connected(256, 0.05, seed=9),
    }
    rows = []
    for name, g in families.items():
        record = [name, g.number_of_nodes(), g.number_of_edges()]
        for scheme in ("bpaths", "flood"):
            _, run = run_scheme(g, scheme)
            record.extend([run.system_calls, run.completion_time()])
        rows.append(record)
    emit(
        capsys,
        "E1/E2 — broadcast across topology families (n ~ 255)",
        ["family", "n", "m", "sc_bpaths", "t_bpaths", "sc_flood", "t_flood"],
        rows,
    )
    benchmark(lambda: run_scheme(families["grid"], "bpaths"))


def test_e15_pipelined_stream(benchmark, capsys):
    """Extension: streaming k broadcasts through the path structure.

    The branching paths pipeline: the root injects one message per
    software slot and every relay forwards within its receiving
    involvement, so k messages complete in (k-1) + O(log n) slots
    instead of stop-and-wait's k * O(log n) — latency log n, throughput
    one broadcast per slot.
    """
    from repro.core import run_pipelined_broadcast, run_stop_and_wait

    rows = []
    n = 256
    p = 2.5 * math.log(n) / n
    g = topologies.random_connected(n, p, seed=n)
    for k in (1, 4, 16, 64):
        pipe = run_pipelined_broadcast(
            Network(g, delays=FixedDelays(0.0, 1.0)), 0, list(range(k))
        )
        sw = run_stop_and_wait(
            Network(g, delays=FixedDelays(0.0, 1.0)), 0, list(range(k))
        )
        assert pipe.complete and sw.complete
        rows.append(
            [k, pipe.makespan, sw.makespan,
             round(k - 1 + 2 + math.log2(n), 1)]
        )
    emit(
        capsys,
        "E15 — streaming k broadcasts on n=256 (extension): pipelined "
        "(k-1) + O(log n) vs. stop-and-wait k * O(log n)",
        ["k", "t_pipelined", "t_stop_and_wait", "(k-1)+2+log2n"],
        rows,
    )
    benchmark(
        lambda: run_pipelined_broadcast(
            Network(g, delays=FixedDelays(0.0, 1.0)), 0, list(range(8))
        )
    )
