"""E4 — topology maintenance: convergence after failures (Theorem 1).

Measured series:

* rounds-to-convergence from a cold start, for scope="local" (the
  ARPANET way: O(d) rounds) vs. scope="full" (the paper's improvement:
  O(log d) rounds) — on paths, where d = n - 1 makes the gap stark;
* per-round system calls of the branching-paths strategy vs. flooding
  on dense graphs (the m/n factor);
* re-convergence after batches of random link failures;
* the Section 3 six-node example: adversarial DFS deadlocks, the
  one-way branching-paths broadcast converges.
"""

from __future__ import annotations

import math

from conftest import emit
from repro.core import attach_topology_maintenance, converge_by_rounds
from repro.network import Network, random_link_failures, topologies
from repro.sim import FixedDelays


def fresh(g):
    return Network(g, delays=FixedDelays(0.0, 1.0))


def test_e4_scope_convergence_rounds(benchmark, capsys):
    rows = []
    for n in (9, 17, 33, 65):
        d = n - 1
        results = {}
        for scope in ("local", "full"):
            net = fresh(topologies.line(n))
            attach_topology_maintenance(net, strategy="bpaths", scope=scope)
            results[scope] = converge_by_rounds(net, max_rounds=2 * n)
        rows.append(
            [
                n,
                d,
                results["local"].rounds,
                results["full"].rounds,
                round(math.log2(d), 1),
            ]
        )
    emit(
        capsys,
        "E4 — broadcasts per node until convergence on a path "
        "(paper: O(d) with local scope, log d with full-knowledge scope)",
        ["n", "diam", "rounds_local", "rounds_full", "log2(d)"],
        rows,
    )

    def one_convergence():
        net = fresh(topologies.line(33))
        attach_topology_maintenance(net, strategy="bpaths", scope="full")
        converge_by_rounds(net, max_rounds=64)

    benchmark(one_convergence)


def test_e4_strategy_cost_per_round(benchmark, capsys):
    rows = []
    for name, g in [
        ("sparse", topologies.random_connected(64, 0.07, seed=1)),
        ("dense", topologies.random_connected(64, 0.3, seed=1)),
        ("complete", topologies.complete(64)),
    ]:
        record = [name, g.number_of_nodes(), g.number_of_edges()]
        for strategy in ("bpaths", "flood"):
            net = fresh(g)
            attach_topology_maintenance(net, strategy=strategy, scope="full")
            result = converge_by_rounds(net, max_rounds=30)
            record.append(round(result.system_calls / (result.rounds * net.n), 2))
        rows.append(record)
    emit(
        capsys,
        "E4 — average system calls per single-node broadcast "
        "(paper: bpaths = n exactly; flooding ~ 2m)",
        ["graph", "n", "m", "bpaths_per_bcast", "flood_per_bcast"],
        rows,
    )

    def converge_once():
        net = fresh(topologies.random_connected(64, 0.3, seed=1))
        attach_topology_maintenance(net, strategy="bpaths", scope="full")
        converge_by_rounds(net, max_rounds=30)

    benchmark(converge_once)


def test_e4_reconvergence_after_failures(benchmark, capsys):
    rows = []
    for batch in (1, 3, 6):
        net = fresh(topologies.grid(6, 6))
        attach_topology_maintenance(net, strategy="bpaths", scope="full")
        converge_by_rounds(net, max_rounds=20)
        schedule = random_link_failures(net.graph, count=batch, seed=batch)
        for action in schedule:
            net.fail_link(*action.target)
        net.run_to_quiescence()
        result = converge_by_rounds(net, max_rounds=20)
        rows.append([batch, result.rounds, result.system_calls])
    emit(
        capsys,
        "E4 — re-convergence on a 6x6 grid after random link failures",
        ["failed_links", "rounds", "system_calls"],
        rows,
    )

    def reconverge():
        net = fresh(topologies.grid(6, 6))
        attach_topology_maintenance(net, strategy="bpaths", scope="full")
        converge_by_rounds(net, max_rounds=20)
        net.fail_link(0, 1)
        converge_by_rounds(net, max_rounds=20)

    benchmark(reconverge)


def test_e4_sixnode_deadlock(benchmark, capsys):
    def adversarial(node, children):
        return sorted(children, key=lambda c: (c - node) % 6)

    def run(strategy, child_order=None):
        net = fresh(topologies.two_connected_example())
        attach_topology_maintenance(
            net, strategy=strategy, scope="local", dfs_child_order=child_order
        )
        converge_by_rounds(net, max_rounds=10)
        for edge in [(0, 3), (1, 4), (2, 5)]:
            net.fail_link(*edge)
        net.run_to_quiescence()
        result = converge_by_rounds(net, max_rounds=25, require=False)
        return "converged in %d" % result.rounds if result.converged else "DEADLOCK"

    rows = [
        ["dfs (adversarial order)", run("dfs", adversarial)],
        ["dfs (sorted order)", run("dfs")],
        ["bpaths (one-way)", run("bpaths")],
    ]
    emit(
        capsys,
        "E4 — the Section 3 six-node example "
        "(paper: DFS broadcast deadlocks; the one-way broadcast converges)",
        ["strategy", "outcome"],
        rows,
    )
    benchmark(lambda: run("bpaths"))


def test_e4_ncu_contention_per_round(benchmark, capsys):
    """All-node rounds are NCU-bound: each processor serves ~n records.

    A single branching-paths broadcast takes O(log n) time, but a full
    round (every node broadcasting, as the maintenance protocol does)
    makes every NCU process ~n messages back to back — so round
    wall-clock grows linearly no matter how clever the broadcast.  This
    is the sequential-NCU bottleneck the model is built to expose.
    """
    rows = []
    for n in (16, 32, 64, 128):
        p = min(0.5, 2.5 * math.log(n) / n)
        # Converge first so steady-state broadcasts span the whole
        # network; then time one more all-node round vs. one broadcast.
        net = fresh(topologies.random_connected(n, p, seed=n))
        attach_topology_maintenance(net, strategy="bpaths", scope="local")
        converge_by_rounds(net, max_rounds=4 * n)
        t0 = net.scheduler.now
        net.start()
        net.run_to_quiescence()
        round_time = net.scheduler.now - t0

        t0 = net.scheduler.now
        net.start([0])
        net.run_to_quiescence()
        single_time = net.scheduler.now - t0
        rows.append([n, single_time, round_time, round(round_time / n, 2)])
    emit(
        capsys,
        "E4 — NCU contention: one broadcast is O(log n) time, but a "
        "full all-node round costs ~n at every sequential NCU",
        ["n", "t_single_bcast", "t_full_round", "round/n"],
        rows,
    )

    def one_round():
        net = fresh(topologies.random_connected(64, 2.5 * math.log(64) / 64, seed=64))
        attach_topology_maintenance(net, strategy="bpaths", scope="local")
        net.start()
        net.run_to_quiescence()

    benchmark(one_round)
