"""Shared helpers for the experiment benches.

Every bench (a) times a representative operation via pytest-benchmark,
(b) prints the experiment's table — the rows EXPERIMENTS.md quotes —
directly to the terminal (bypassing capture) so ``pytest benchmarks/
--benchmark-only | tee bench_output.txt`` records them, and (c) saves
the same rows as CSV under ``benchmarks/results/`` for machine reuse.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

import pytest

from pathlib import Path

from repro.analysis.export import rows_to_csv, slugify
from repro.metrics import format_table

RESULTS_DIR = Path(__file__).parent / "results"


def emit(capsys: pytest.CaptureFixture, title: str, headers: Sequence[str],
         rows: Iterable[Sequence[Any]]) -> None:
    """Print an experiment table to the real terminal and save it as CSV."""
    import sys

    rows = [list(r) for r in rows]
    rows_to_csv(RESULTS_DIR / f"{slugify(title)}.csv", headers, rows)
    with capsys.disabled():
        sys.stdout.flush()
        print()
        print(format_table(headers, rows, title=title))
        print()
        sys.stdout.flush()
