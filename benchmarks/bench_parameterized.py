"""E13 — extension: Sections 3–4 under the general (C, P) model.

The paper analyses broadcast and election in the limiting model C = 0
and poses the general parameterised model as the setting of Section 5
only; its conclusion asks how other algorithms behave as the hardware/
software balance shifts.  This bench answers empirically for the
broadcast schemes and the election:

* **Broadcast** — once C grows, hardware distance matters again: the
  DFS tour's 2n-hop snake pays ~2nC, flooding pays ~diameter(C+P), the
  branching-paths broadcast pays path-depth C along each chained path.
  The ranking flips as C/P grows — the crossover the table locates.
* **Election** — tour hops ride multi-hop ANRs, so time picks up a
  C-proportional term while the system-call count stays put: the new
  measure's costs are delay-model-independent, which is the point of
  counting involvements rather than time.
"""

from __future__ import annotations

from conftest import emit
from repro.core import (
    BranchingPathsBroadcast,
    DfsBroadcast,
    FloodingBroadcast,
    LeaderElection,
    run_standalone_broadcast,
)
from repro.network import Network, topologies
from repro.sim import FixedDelays


def test_e13_broadcast_time_vs_C(benchmark, capsys):
    g = topologies.grid(8, 8)
    rows = []
    for C in (0.0, 0.25, 1.0, 4.0, 16.0):
        record = [f"{C:g}"]
        for scheme, cls in [
            ("bpaths", BranchingPathsBroadcast),
            ("dfs", DfsBroadcast),
            ("flood", FloodingBroadcast),
        ]:
            net = Network(g, delays=FixedDelays(C, 1.0))
            adjacency = net.adjacency()
            if cls is FloodingBroadcast:
                factory = lambda api: FloodingBroadcast(api, root=0)
            else:
                factory = lambda api, cls=cls: cls(
                    api, root=0, adjacency=adjacency, ids=net.id_lookup
                )
            run = run_standalone_broadcast(net, factory, 0)
            assert run.coverage == net.n
            record.append(run.completion_time())
        rows.append(record)
    emit(
        capsys,
        "E13 — broadcast completion time on an 8x8 grid as C grows (P=1). "
        "At C=0 the constant-time DFS snake wins; as hardware distance "
        "starts to cost, its 2n-hop tour loses to both the BFS-structured "
        "schemes — the crossover the limiting model hides",
        ["C", "t_bpaths", "t_dfs", "t_flood"],
        rows,
    )
    net = Network(g, delays=FixedDelays(1.0, 1.0))
    adjacency = net.adjacency()
    benchmark(
        lambda: run_standalone_broadcast(
            Network(g, delays=FixedDelays(1.0, 1.0)),
            lambda api: BranchingPathsBroadcast(
                api, root=0, adjacency=adjacency, ids=net.id_lookup
            ),
            0,
        )
    )


def test_e13_election_costs_vs_C(benchmark, capsys):
    g = topologies.random_connected(48, 0.12, seed=4)
    rows = []
    for C in (0.0, 0.5, 2.0, 8.0):
        net = Network(g, delays=FixedDelays(C, 1.0))
        net.attach(lambda api: LeaderElection(api))
        net.start()
        net.run_to_quiescence(max_events=5_000_000)
        winners = [v for v, f in net.outputs_for_key("is_leader").items() if f]
        assert len(winners) == 1
        snap = net.metrics.snapshot()
        tours = snap.system_calls_by_kind.get("tour", 0) + snap.system_calls_by_kind.get(
            "return", 0
        )
        rows.append([f"{C:g}", tours, snap.system_calls, snap.hops, net.scheduler.now])
    emit(
        capsys,
        "E13 — election under growing C (n=48): system-call and hop counts "
        "barely move (message timing shifts a capture here and there, the "
        "Theorem 5 budget holds throughout); only elapsed time scales with C",
        ["C", "tour+return", "total_sc", "hops", "time"],
        rows,
    )
    benchmark(
        lambda: (
            lambda net: (net.attach(lambda api: LeaderElection(api)), net.start(),
                         net.run_to_quiescence(max_events=5_000_000))
        )(Network(g, delays=FixedDelays(1.0, 1.0)))
    )
