"""E11 — ablations of the Section 3 design choices.

* **One-way restriction**: the DFS tour broadcast is time-1 but loses
  everything past a failed link; the branching-paths broadcast pays
  log n time for failure-prefix coverage; the layered-BFS footnote
  scheme gets both — at Θ(n·d) header cost, which the dmax restriction
  of Section 2 forbids.  The table measures coverage under one failed
  link, time, and header bits per scheme.
* **Path decomposition vs. per-node direct sends**: the labels are what
  buy log n time over the O(n) naive sender.
* **Tour-length cap in the election**: phase-bounded tours are what
  keep the system-call count linear; the table shows tour lengths never
  exceed phase + 1.
"""

from __future__ import annotations

import math

from conftest import emit
from repro.core import (
    BranchingPathsBroadcast,
    DfsBroadcast,
    DirectBroadcast,
    LayeredBfsBroadcast,
    LeaderElection,
    dfs_broadcast_header,
    layered_broadcast_header,
    plan_broadcast,
    run_standalone_broadcast,
)
from repro.network import Network, bfs_tree, topologies
from repro.sim import FixedDelays


def test_e11_oneway_vs_single_packet(benchmark, capsys):
    """Coverage under a mid-tree failure + header cost per scheme."""
    n = 63
    g = topologies.complete_binary_tree(5)
    stale = {u: tuple(sorted(g.neighbors(u))) for u in g}
    tree = bfs_tree(stale, 0)
    k_bits = None
    rows = []
    for name, cls in [
        ("bpaths", BranchingPathsBroadcast),
        ("dfs", DfsBroadcast),
        ("layered", LayeredBfsBroadcast),
    ]:
        net = Network(g, delays=FixedDelays(0.0, 1.0), dmax=10**6)
        k_bits = net.id_space.k
        net.fail_link(3, 7)  # a depth-2 -> depth-3 edge on the DFS tour
        net.attach(
            lambda api, cls=cls: cls(api, root=0, adjacency=stale, ids=net.id_lookup)
        )
        net.run_to_quiescence()
        before = net.metrics.snapshot()
        net.start([0])
        net.run_to_quiescence()
        received = net.outputs_for_key("received_at")
        if name == "bpaths":
            header_ids = sum(
                len(d.header) for d in plan_broadcast(tree, net.id_lookup).directives
            )
        elif name == "dfs":
            header_ids = len(dfs_broadcast_header(tree, net.id_lookup))
        else:
            header_ids = len(layered_broadcast_header(tree, net.id_lookup))
        delta = net.metrics.since(before)
        rows.append(
            [
                name,
                len(received),
                n - len(received),
                max(received.values()),
                header_ids,
                header_ids * k_bits,
            ]
        )
    emit(
        capsys,
        "E11 — failed link (3,7) on a depth-5 binary tree (n=63): coverage, "
        "time, and total header cost. One-way bpaths keeps every branch not "
        "behind the failure; layered guarantees all nodes closer than the "
        "failing sweep; DFS guarantees nothing past the break",
        ["scheme", "covered", "lost", "time", "header_ids", "header_bits"],
        rows,
    )
    net = Network(g, delays=FixedDelays(0.0, 1.0))
    benchmark(lambda: plan_broadcast(tree, net.id_lookup))


def test_e11_paths_vs_direct(benchmark, capsys):
    """The label decomposition vs. naive per-node direct messages."""
    rows = []
    for n in (31, 127, 511):
        p = min(0.5, 2.5 * math.log(n) / n)
        g = topologies.random_connected(n, p, seed=n)
        results = {}
        for name, cls in [("bpaths", BranchingPathsBroadcast), ("direct", DirectBroadcast)]:
            net = Network(g, delays=FixedDelays(0.0, 1.0))
            adjacency = net.adjacency()
            run = run_standalone_broadcast(
                net,
                lambda api, cls=cls: cls(
                    api, root=0, adjacency=adjacency, ids=net.id_lookup
                ),
                0,
            )
            results[name] = run
        rows.append(
            [
                n,
                results["bpaths"].completion_time(),
                results["direct"].completion_time(),
                results["bpaths"].system_calls,
                results["direct"].system_calls,
            ]
        )
    emit(
        capsys,
        "E11 — path decomposition vs. naive direct sends "
        "(paper Section 3.1: both are O(n) calls; only the decomposition "
        "achieves O(log n) time)",
        ["n", "t_bpaths", "t_direct", "sc_bpaths", "sc_direct"],
        rows,
    )
    g = topologies.random_connected(127, 2.5 * math.log(127) / 127, seed=127)
    net = Network(g, delays=FixedDelays(0.0, 1.0))
    adjacency = net.adjacency()
    benchmark(
        lambda: run_standalone_broadcast(
            Network(g, delays=FixedDelays(0.0, 1.0)),
            lambda api: BranchingPathsBroadcast(
                api, root=0, adjacency=adjacency, ids=net.id_lookup
            ),
            0,
        )
    )


def test_e11_election_tour_lengths(benchmark, capsys):
    """Tours stay within phase + 1 hops (Lemma 3's consequence)."""
    rows = []
    for name, g in [
        ("line", topologies.line(64)),
        ("grid", topologies.grid(8, 8)),
        ("random", topologies.random_connected(64, 0.1, seed=5)),
    ]:
        net = Network(g, delays=FixedDelays(0.0, 1.0))
        max_hops = {"value": 0, "budget_ok": True}

        class Instrumented(LeaderElection):
            def _handle_tour(self, token, packet):
                max_hops["value"] = max(max_hops["value"], token.hops_done)
                if token.hops_done > token.phase + 1:
                    max_hops["budget_ok"] = False
                super()._handle_tour(token, packet)

        net.attach(lambda api: Instrumented(api))
        net.start()
        net.run_to_quiescence(max_events=5_000_000)
        phase_bound = int(math.log2(net.n)) + 1
        rows.append(
            [name, net.n, max_hops["value"], phase_bound,
             "yes" if max_hops["budget_ok"] else "NO"]
        )
    emit(
        capsys,
        "E11 — election tour lengths (paper rule 1: never more than "
        "phase+1 direct hops; phase <= log2 n)",
        ["topology", "n", "max_tour_hops", "log2n+1", "within_budget"],
        rows,
    )
    g = topologies.grid(8, 8)
    benchmark(
        lambda: (
            lambda net: (net.attach(lambda api: LeaderElection(api)), net.start(),
                         net.run_to_quiescence())
        )(Network(g, delays=FixedDelays(0.0, 1.0)))
    )


def test_e12_hardware_groups_vs_bpaths(benchmark, capsys):
    """The 'more powerful hardware' extension: installed multicast trees.

    Steady-state broadcasting over a pre-installed group costs constant
    time per message; the stateless branching-paths broadcast pays
    log n time but needs no hardware state and survives topology churn
    without re-provisioning.  The table shows the amortisation point.
    """
    from repro.core import run_group_multicast

    rows = []
    for n in (32, 128, 512):
        p = min(0.5, 2.5 * math.log(n) / n)
        g = topologies.random_connected(n, p, seed=n)

        net_g = Network(g, delays=FixedDelays(0.0, 1.0))
        group_run = run_group_multicast(net_g, 0, bodies=list(range(3)))

        net_b = Network(g, delays=FixedDelays(0.0, 1.0))
        adjacency = net_b.adjacency()
        bpaths_run = run_standalone_broadcast(
            net_b,
            lambda api: BranchingPathsBroadcast(
                api, root=0, adjacency=adjacency, ids=net_b.id_lookup
            ),
            0,
        )
        rows.append(
            [
                n,
                group_run.setup_calls,
                group_run.setup_time,
                group_run.per_message_calls[0],
                group_run.per_message_time[0],
                bpaths_run.system_calls,
                bpaths_run.completion_time(),
            ]
        )
    emit(
        capsys,
        "E12 — installed hardware multicast groups vs. stateless "
        "branching-paths broadcast (extension of the paper's Section 2 "
        "'more powerful models' remark)",
        ["n", "setup_sc", "setup_t", "group_sc/msg", "group_t/msg",
         "bpaths_sc", "bpaths_t"],
        rows,
    )
    g = topologies.random_connected(128, 2.5 * math.log(128) / 128, seed=128)
    benchmark(
        lambda: run_group_multicast(
            Network(g, delays=FixedDelays(0.0, 1.0)), 0, bodies=["x"]
        )
    )


def test_e11_election_phase_cap_ablation(benchmark, capsys):
    """Remove rule (1)'s tour budget: correct but measurably costlier.

    Lemma 3 keeps virtual chains within log2(size) even without the
    cap, so the blow-up is bounded by a log factor — but the cap is
    what turns "bounded by n log n" into the clean 6n of Theorem 5.
    The adversarial input: half the nodes build a large domain first,
    then the other half wake as singletons and probe it; every probe
    without the cap walks the chain it would otherwise abort after one
    hop.
    """
    from repro.core import LeaderElection

    def staggered(n, cap):
        net = Network(topologies.complete(n), delays=FixedDelays(0.0, 1.0))
        net.attach(lambda api: LeaderElection(api, phase_cap=cap))
        half = n // 2
        net.start(list(range(half)), at=0.0)
        net.run_to_quiescence(max_events=10_000_000)
        net.start(list(range(half, n)), at=net.scheduler.now)
        net.run_to_quiescence(max_events=10_000_000)
        snap = net.metrics.snapshot()
        return snap.system_calls_by_kind.get("tour", 0) + snap.system_calls_by_kind.get(
            "return", 0
        )

    rows = []
    for n in (32, 128, 512):
        with_cap = staggered(n, True)
        without = staggered(n, False)
        rows.append([n, with_cap, without, 6 * n,
                     f"{(without - with_cap) / with_cap:+.1%}"])
    emit(
        capsys,
        "E11 — ablating rule (1)'s phase cap (staggered adversarial "
        "starts): still correct, consistently costlier; the cap is the "
        "Theorem 5 bookkeeping",
        ["n", "tour+ret (cap)", "tour+ret (no cap)", "6n", "overhead"],
        rows,
    )
    benchmark(lambda: staggered(64, True))
