"""Setup shim for environments without the `wheel` package.

The project is fully described by pyproject.toml; this file only enables
the legacy editable-install path (`pip install -e . --no-use-pep517`)
on machines where PEP 660 builds are unavailable offline.
"""

from setuptools import setup

setup()
