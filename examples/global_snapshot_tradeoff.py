#!/usr/bin/env python3
"""Scenario: network-wide load snapshots under different delay regimes.

A management station (node 0) wants the maximum link load over all 64
switches — a globally sensitive function.  How should the aggregation
be structured?  Section 5's answer: it depends on the ratio of the
hardware delay C to the software delay P, and the optimal tree is given
by the recursion OT(t) = OT(t-P) (+) OT(t-C-P).

This example sweeps C/P from 0 (fast LAN, software-bound) to 64
(long-haul WAN, propagation-bound), builds the optimal tree for each
regime, runs it in the simulator against star / binary / path
baselines, and prints where each baseline stops being competitive.

Run:  python examples/global_snapshot_tradeoff.py
"""

from __future__ import annotations

import random

from repro import FixedDelays, Network, OptTreeBuilder, format_table, topologies
from repro.core import run_tree_aggregation, shape_spanning_tree
from repro.core.tree_shapes import predicted_completion, shape_catalog
from repro.core.globalfn import optimal_spanning_tree

N = 64


def main() -> None:
    print(__doc__)
    rng = random.Random(0)
    loads = {i: rng.randint(0, 1000) for i in range(N)}
    expected = max(loads.values())

    rows = []
    for ratio in (0, 1, 4, 16, 64):
        P, C = 1.0, float(ratio)
        builder = OptTreeBuilder(P, C)
        t_opt, shape = builder.optimal_tree_for(N)

        # Run the optimal tree in the simulator.
        net = Network(topologies.complete(N), delays=FixedDelays(C, P))
        _, tree = optimal_spanning_tree(net, P, C)
        run = run_tree_aggregation(net, tree, max, loads)
        assert run.result == expected

        # Baselines, analytically (the simulator agrees — see the tests).
        shapes = shape_catalog(N)
        rows.append(
            [
                f"{ratio}:1",
                float(t_opt),
                f"{run.completion_time:.0f}",
                shape.degree_of_root(),
                shape.depth(),
                float(predicted_completion(shapes["star"], P, C)),
                float(predicted_completion(shapes["binary"], P, C)),
                float(predicted_completion(shapes["path"], P, C)),
            ]
        )

    print(format_table(
        ["C:P", "t_opt", "measured", "root deg", "depth",
         "t_star", "t_binary", "t_path"],
        rows,
        title=f"max-load snapshot over K{N}: optimal vs. fixed shapes",
    ))
    print(
        "\nReading the table:"
        "\n  * C=0 (pure software cost): the optimal tree is the binomial"
        "\n    tree — depth log n, every unit of parallelism used."
        "\n  * C=P: Fibonacci trees."
        "\n  * C >> P: the tree flattens toward a star; but note the star"
        "\n    only *matches* the optimum in the degenerate limit — on a"
        "\n    complete graph the new model never becomes the traditional"
        "\n    one-unit-per-message model (the paper's closing point)."
    )

    # Verify the measured/star crossover claim with one simulation.
    P, C = 1.0, 0.0
    net = Network(topologies.complete(N), delays=FixedDelays(C, P))
    star = shape_spanning_tree(net, shape_catalog(N)["star"])
    run = run_tree_aggregation(net, star, max, loads)
    print(f"\nstar under C=0: measured {run.completion_time:.0f} time units "
          f"(vs. {float(OptTreeBuilder(P, C).optimal_time(N))} optimal) — "
          "the sequential root is the bottleneck the paper's model exposes.")


if __name__ == "__main__":
    main()
