#!/usr/bin/env python3
"""Scenario: watching an election conform to its bounds, live.

The paper's theorems are budgets — Theorem 5 allows at most 6n
tour/return system calls for leader election.  This example attaches
all three online conformance monitors (`BudgetMonitor`,
`InvariantMonitor`, `ProgressWatchdog`) to an election that runs after
random link failures, and prints every alert next to the bound it
guards.  The honest run stays silent; a second run with a deliberately
tightened (wrong) budget shows what a breach looks like the moment it
happens.

Run:  python examples/monitored_run.py
"""

from __future__ import annotations

from repro import FixedDelays, LeaderElection, Network, format_table, topologies
from repro.network import random_link_failures
from repro.obs import (
    Budget,
    BudgetMonitor,
    InvariantMonitor,
    MonitorHost,
    ProgressWatchdog,
    election_budgets,
    render_alerts,
)


def build_network(seed: int = 7) -> Network:
    """A 32-node random network with three links failed before start."""
    g = topologies.random_connected(32, 0.15, seed=seed)
    net = Network(g, delays=FixedDelays(0.0, 1.0))
    for action in random_link_failures(net.graph, count=3, seed=seed):
        net.fail_link(*action.target)
    return net


def monitored_election(net: Network, budgets) -> tuple[MonitorHost, dict]:
    """Run an all-starters election with monitors attached."""
    host = MonitorHost(
        net,
        [
            BudgetMonitor(net, budgets),
            InvariantMonitor(net, every=16),
            ProgressWatchdog(net, deadline=10_000.0),
        ],
        on_alert=lambda alert: print(
            f"  ALERT [{alert.monitor}] t={alert.time:g}: {alert.message}"
        ),
    ).install()
    net.attach(lambda api: LeaderElection(api))
    net.start()
    net.run_to_quiescence(max_events=5_000_000)
    host.finish()
    leaders = {
        node for node, flag in net.outputs_for_key("is_leader").items() if flag
    }
    snap = net.metrics.snapshot()
    tours = snap.system_calls_by_kind.get("tour", 0)
    returns = snap.system_calls_by_kind.get("return", 0)
    return host, {"leaders": leaders, "tour_return": tours + returns}


def main() -> None:
    print(__doc__)

    # ------------------------------------------------------------------
    # 1. The honest run: Theorem 5's real budget, no alerts expected.
    # ------------------------------------------------------------------
    net = build_network()
    budgets = election_budgets(net)
    print("election with the paper's budgets (alerts print as they fire):")
    host, result = monitored_election(net, budgets)
    rows = [
        [
            budget.claim,
            f"{budget.value():g}",
            f"{budget.bound:g}",
            "held" if not host.violations else "BREACHED",
        ]
        for budget in budgets
    ]
    rows.append(["Section 4 invariants (checked every 16 events)", "-", "-",
                 "held" if not host.alerts else "see alerts"])
    rows.append(["watchdog: quiescent by t=10000", f"{net.scheduler.now:g}",
                 "10000", "held"])
    print(format_table(
        ["guarantee", "observed", "bound", "verdict"],
        rows,
        title=f"\nleader {sorted(result['leaders'])}, "
              f"{result['tour_return']} tour+return calls on n={net.n}:",
    ))
    print()
    print(render_alerts(host.alerts, title="alerts (honest run)"))

    # ------------------------------------------------------------------
    # 2. The same run against a deliberately wrong budget — this is
    #    what a theorem violation would look like, caught mid-run.
    # ------------------------------------------------------------------
    net = build_network()
    tightened = [
        Budget(
            measure=b.measure,
            bound=net.n,  # pretend the bound were n instead of 6n
            claim=f"(wrong on purpose) {b.measure} <= n = {net.n}",
            value=b.value,
        )
        for b in election_budgets(net)
    ]
    print("\nsame election, budget tightened from 6n to n (wrong on purpose):")
    host, _ = monitored_election(net, tightened)
    print()
    print(render_alerts(host.alerts, title="alerts (tightened budget)"))
    print(
        "\nThe breach fired mid-run, at the first event past the fake "
        "bound — long before the election finished.  With the real 6n "
        "budget above, the same counters never tripped it."
    )


if __name__ == "__main__":
    main()
