#!/usr/bin/env python3
"""Scenario: running a PARIS-style network control plane.

The paper's motivating deployment: a wide-area fast network whose
user traffic flows through switching hardware while a single control
processor per node maintains the topology map (needed for source
routing).  This example drives the full control-plane lifecycle on a
64-node backbone:

1. cold start — every node learns the whole topology;
2. steady state — periodic broadcasts keep the maps fresh;
3. a fibre cut (two link failures) — the maps re-converge;
4. a node outage and repair;

and compares the control-plane *cost* of the paper's branching-paths
broadcast against ARPANET flooding throughout.

Run:  python examples/network_control_plane.py
"""

from __future__ import annotations

from repro import (
    FixedDelays,
    Network,
    converge_by_rounds,
    format_table,
    is_converged,
    topologies,
)
from repro.core import attach_topology_maintenance


def build_backbone(seed: int = 42):
    """A geometric random graph: links follow physical proximity, as a
    fibre backbone does."""
    return topologies.random_geometric_connected(64, 0.22, seed=seed)


def lifecycle(strategy: str) -> list[list]:
    net = Network(build_backbone(), delays=FixedDelays(hardware=0.0, software=1.0))
    attach_topology_maintenance(net, strategy=strategy, scope="full")
    rows = []

    def phase(name: str) -> None:
        before = net.metrics.snapshot()
        result = converge_by_rounds(net, max_rounds=40)
        delta = net.metrics.since(before)
        rows.append([name, result.rounds, delta.system_calls, delta.hops])

    phase("cold start")

    # A fibre cut takes out two geographically close links.
    edges = sorted(net.links)
    net.fail_link(*edges[3])
    net.fail_link(*edges[4])
    net.run_to_quiescence()
    assert not is_converged(net)
    phase("fibre cut (2 links)")

    # A node outage: all its links go down, then come back.
    net.fail_node(17)
    net.run_to_quiescence()
    phase("node 17 outage")
    net.restore_node(17)
    net.restore_link(*edges[3])
    net.restore_link(*edges[4])
    net.run_to_quiescence()
    phase("full repair")
    return rows


def main() -> None:
    print(__doc__)
    for strategy in ("bpaths", "flood"):
        rows = lifecycle(strategy)
        print(format_table(
            ["event", "rounds to converge", "system calls", "hardware hops"],
            rows,
            title=f"\ncontrol-plane lifecycle — strategy = {strategy}:",
        ))
    print(
        "\nThe branching-paths control plane pays ~n system calls per broadcast"
        "\nwhere flooding pays ~2m — on this backbone the software savings per"
        "\nconvergence event are the m/n ratio the paper predicts."
    )


if __name__ == "__main__":
    main()
