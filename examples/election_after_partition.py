#!/usr/bin/env python3
"""Scenario: re-electing a coordinator after faults.

The paper motivates leader election with "organizing a network after
faults have occurred".  This example partitions a 48-node network into
two halves, elects a leader in each half independently, heals the
partition, and re-elects a single coordinator — measuring the
system-call cost of each election against the Theorem 5 bound and
against the classic ring algorithms run on the same number of nodes.

Run:  python examples/election_after_partition.py
"""

from __future__ import annotations

import networkx as nx

from repro import FixedDelays, LeaderElection, Network, format_table, topologies
from repro.core import ChangRoberts, HirschbergSinclair


def elect(net: Network, starters=None) -> tuple[dict, int]:
    net.attach(lambda api: LeaderElection(api))
    net.start(starters)
    net.run_to_quiescence(max_events=5_000_000)
    snap = net.metrics.snapshot()
    tours = snap.system_calls_by_kind.get("tour", 0)
    returns = snap.system_calls_by_kind.get("return", 0)
    leaders = {
        node for node, flag in net.outputs_for_key("is_leader").items() if flag
    }
    return leaders, tours + returns


def main() -> None:
    print(__doc__)
    g = topologies.grid(6, 8)  # 48 nodes

    # ------------------------------------------------------------------
    # Partition: cut the grid down the middle.
    # ------------------------------------------------------------------
    cut = [(u, v) for u, v in g.edges if (u % 8 <= 3) != (v % 8 <= 3)]
    left_nodes = {v for v in g if v % 8 <= 3}

    halves = []
    for side, keep in [("left", left_nodes), ("right", set(g) - left_nodes)]:
        sub = g.subgraph(keep).copy()
        sub = nx.convert_node_labels_to_integers(sub, ordering="sorted")
        net = Network(sub, delays=FixedDelays(0.0, 1.0))
        leaders, cost = elect(net)
        halves.append([f"{side} half", net.n, sorted(leaders), cost, 6 * net.n])

    # ------------------------------------------------------------------
    # Healed network: one election over all 48 nodes.
    # ------------------------------------------------------------------
    net = Network(g, delays=FixedDelays(0.0, 1.0))
    leaders, cost = elect(net)
    rows = halves + [["healed (all 48)", net.n, sorted(leaders), cost, 6 * net.n]]
    print(format_table(
        ["election", "n", "leader", "tour+return calls", "6n bound"],
        rows,
        title="fault recovery elections (new algorithm):",
    ))

    # ------------------------------------------------------------------
    # The same job with the traditional ring algorithms (on a 48-ring).
    # ------------------------------------------------------------------
    rows = []
    for name, factory in [
        ("new algorithm", lambda api: LeaderElection(api)),
        ("Chang-Roberts (worst)", lambda api: ChangRoberts(api, direction=-1)),
        ("Hirschberg-Sinclair", lambda api: HirschbergSinclair(api)),
    ]:
        ring = Network(topologies.ring(48), delays=FixedDelays(0.0, 1.0))
        ring.attach(factory)
        ring.start()
        ring.run_to_quiescence(max_events=5_000_000)
        rows.append([name, ring.metrics.system_calls, f"{ring.scheduler.now:.0f}"])
    print(format_table(
        ["algorithm", "total system calls", "time"],
        rows,
        title="\nhead-to-head on a 48-node ring (every classic hop is software):",
    ))


if __name__ == "__main__":
    main()
