#!/usr/bin/env python3
"""A guided tour of the hardware model (Section 2).

Shows, at the packet level, what the switching subsystem does: normal
IDs forward silently, copy IDs tee a copy into the local NCU, the NCU
ID terminates, reverse paths accumulate so receivers can reply, and
the dmax restriction rejects over-long source routes.  Every hop and
system call is shown from the simulator's trace.

Run:  python examples/anr_hardware_tour.py
"""

from __future__ import annotations

from repro import FixedDelays, Network, Protocol, topologies
from repro.hardware import build_anr, header_to_bits, path_broadcast_anr, reply_route
from repro.sim import PathTooLongError, TraceKind


class Narrator(Protocol):
    """Prints every NCU delivery it sees."""

    def on_packet(self, packet):
        print(
            f"    t={self.api.now:4.1f}  node {self.api.node_id} NCU got "
            f"{packet.payload!r}  (hops so far: {packet.hops}, "
            f"reverse route: {packet.reverse_anr})"
        )
        if packet.payload == "ping":
            print(f"           ... replying along the reverse path")
            self.api.send(reply_route(packet), "pong")


def main() -> None:
    print(__doc__)
    net = Network(topologies.line(5), delays=FixedDelays(0.0, 1.0), trace=True)
    net.attach(lambda api: Narrator(api))
    k = net.id_space.k

    print(f"Line of 5 nodes; IDs are {k} bits; copy flag = "
          f"{bin(net.id_space.flag)}.\n")

    # ------------------------------------------------------------------
    # 1. A plain source route: silent transit.
    # ------------------------------------------------------------------
    header = build_anr([0, 1, 2, 3, 4], net.id_lookup)
    print(f"1. direct message 0 -> 4, header {header} "
          f"(bits: {header_to_bits(header, k)})")
    net.node(0).inject(header, "ping")
    net.run_to_quiescence()
    hops = net.trace.count(TraceKind.PACKET_HOP)
    calls = net.metrics.system_calls
    print(f"   => {hops} hardware hops total, {calls} system calls "
          "(intermediate switches never woke their processors;\n"
          "      the receiver replied using the accumulated reverse path)\n")

    # ------------------------------------------------------------------
    # 2. Selective copy: one packet, every NCU on the path.
    # ------------------------------------------------------------------
    net.trace.clear()
    header = path_broadcast_anr([0, 1, 2, 3, 4], net.id_lookup)
    print(f"2. path broadcast 0 -> 4 with copies, header {header}")
    net.node(0).inject(header, "to-everyone")
    net.run_to_quiescence()
    print(f"   => copies delivered: {net.trace.count(TraceKind.PACKET_COPIED)}, "
          f"all in parallel at t=1 (one packet, n-1 informed NCUs)\n")

    # ------------------------------------------------------------------
    # 3. The dmax restriction.
    # ------------------------------------------------------------------
    print(f"3. dmax = {net.dmax}: a header of {net.dmax + 1} IDs is rejected")
    try:
        net.node(0).inject(tuple([1] * (net.dmax + 1)), "too long")
    except PathTooLongError as exc:
        print(f"   => PathTooLongError: {exc}\n")

    # ------------------------------------------------------------------
    # 4. Failure semantics: inactive links deliver nothing.
    # ------------------------------------------------------------------
    net.fail_link(2, 3)
    net.run_to_quiescence()
    net.trace.clear()
    header = build_anr([0, 1, 2, 3, 4], net.id_lookup)
    print("4. link (2,3) failed; resending the 0 -> 4 message")
    net.node(0).inject(header, "doomed")
    net.run_to_quiescence()
    drop = net.trace.last(TraceKind.PACKET_DROPPED)
    print(f"   => dropped at the switch: reason={drop.detail['reason']!r} "
          f"link={drop.detail.get('link')} — the hardware has no error channel;\n"
          "      recovering from this is the topology-maintenance protocol's job.")


if __name__ == "__main__":
    main()
