#!/usr/bin/env python3
"""Scenario: user traffic vs. control traffic — the paper's premise.

The introduction's whole argument: user-to-user traffic (video, bulk
data) is orders of magnitude larger than control traffic, so switching
must be hardware while control stays software.  This example stages
both kinds of traffic on one backbone and measures where the *software*
(system calls) actually goes:

1. set up a batch of user "video calls" (source-routed, per-node state
   installed by selective copies);
2. stream a large number of data packets over the established calls —
   pure hardware transit;
3. run the control plane (a topology broadcast round) concurrently;
4. compare hardware hops vs. NCU involvements per traffic class.

Run:  python examples/mixed_traffic.py
"""

from __future__ import annotations

import itertools
import random

import networkx as nx

from repro import FixedDelays, Network, format_table, topologies
from repro.core import BranchingPathsBroadcast, run_standalone_broadcast
from repro.core.call_setup import CallManager


def main() -> None:
    print(__doc__)
    g = topologies.grid(6, 6)
    net = Network(g, delays=FixedDelays(0.0, 1.0))
    net.attach(lambda api: CallManager(api, ids=net.id_lookup))
    rng = random.Random(7)

    # ------------------------------------------------------------------
    # 1. Set up 12 calls between random endpoint pairs.
    # ------------------------------------------------------------------
    calls = []
    before = net.metrics.snapshot()
    for call_id in itertools.count(1):
        if len(calls) == 12:
            break
        src, dst = rng.sample(sorted(net.nodes), 2)
        route = tuple(nx.shortest_path(g, src, dst))
        net.start([src], payload=("setup", call_id, route))
        net.run_to_quiescence()
        if net.output(src, f"established:{call_id}") is not None:
            calls.append((call_id, src, route))
    setup = net.metrics.since(before)

    # ------------------------------------------------------------------
    # 2. Stream 200 packets per call ("video frames").
    # ------------------------------------------------------------------
    before = net.metrics.snapshot()
    frames = 200
    for _ in range(frames):
        for call_id, src, route in calls:
            net.start([src], payload=("send", call_id, "frame"))
        net.run_to_quiescence()
    data = net.metrics.since(before)

    # ------------------------------------------------------------------
    # 3. One control-plane broadcast round on a fresh attach.
    # ------------------------------------------------------------------
    net2 = Network(g, delays=FixedDelays(0.0, 1.0))
    adjacency = net2.adjacency()
    control = run_standalone_broadcast(
        net2,
        lambda api: BranchingPathsBroadcast(
            api, root=0, adjacency=adjacency, ids=net2.id_lookup
        ),
        0,
    )

    # ------------------------------------------------------------------
    # 4. The software bill per traffic class.
    # ------------------------------------------------------------------
    total_frames = frames * len(calls)
    rows = [
        ["call setup (12 calls)", setup.system_calls, setup.hops,
         f"{setup.system_calls / len(calls):.1f} per call"],
        [f"user data ({total_frames} pkts)", data.system_calls, data.hops,
         f"{data.system_calls / total_frames:.2f} per packet"],
        ["topology broadcast", control.metrics.system_calls,
         control.metrics.hops, "n-1 per broadcast"],
    ]
    print(format_table(
        ["traffic class", "system calls", "hardware hops", "software cost"],
        rows,
        title="where the software goes on a 6x6 backbone:",
    ))
    per_packet = data.system_calls / total_frames
    print(
        f"\nEach user packet costs {per_packet:.2f} NCU involvements "
        "(originator inject + destination receipt)\nand zero at every "
        "intermediate switch — while its hardware hops "
        f"({data.hops / total_frames:.1f} per packet on average)\nride the "
        "SS for free.  Control traffic is the only load the processors "
        "ever see,\nwhich is exactly why the paper counts system calls."
    )


if __name__ == "__main__":
    main()
