#!/usr/bin/env python3
"""Quickstart: the fast-network model in five minutes.

Builds a small network under the paper's limiting model (hardware free,
every NCU involvement costs one time unit), sends a source-routed
packet with selective copies, then runs the three headline algorithms
once each and prints their costs in the paper's measures.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import operator

from repro import (
    BranchingPathsBroadcast,
    FixedDelays,
    LeaderElection,
    Network,
    format_table,
    optimal_spanning_tree,
    run_standalone_broadcast,
    run_tree_aggregation,
    topologies,
)


def main() -> None:
    # ------------------------------------------------------------------
    # 1. A network: 32 nodes, sparse random topology, C=0 / P=1.
    # ------------------------------------------------------------------
    net = Network(topologies.random_connected(32, 0.15, seed=7),
                  delays=FixedDelays(hardware=0.0, software=1.0))
    print(f"network: n={net.n} nodes, m={net.m} links, diameter={net.diameter()}")
    print(f"ANR IDs are {net.id_space.k} bits; dmax={net.dmax}\n")

    # ------------------------------------------------------------------
    # 2. Topology broadcast (Section 3): n system calls, log n time.
    # ------------------------------------------------------------------
    adjacency = net.adjacency()
    run = run_standalone_broadcast(
        net,
        lambda api: BranchingPathsBroadcast(
            api, root=0, adjacency=adjacency, ids=net.id_lookup, body="hello"
        ),
        0,
    )
    print("branching-paths broadcast from node 0:")
    print(f"  coverage      : {run.coverage}/{net.n} nodes")
    print(f"  system calls  : {run.system_calls}  (paper: n per broadcast)")
    print(f"  time units    : {run.completion_time():.0f}  (paper: <= 1 + log2 n)")
    print(f"  hardware hops : {run.metrics.hops}\n")

    # ------------------------------------------------------------------
    # 3. Leader election (Section 4): <= 6n tour/return system calls.
    # ------------------------------------------------------------------
    net2 = Network(topologies.random_connected(32, 0.15, seed=7),
                   delays=FixedDelays(0.0, 1.0))
    net2.attach(lambda api: LeaderElection(api))
    net2.start()
    net2.run_to_quiescence()
    flags = net2.outputs_for_key("is_leader")
    leader = next(node for node, is_leader in flags.items() if is_leader)
    snap = net2.metrics.snapshot()
    tours = snap.system_calls_by_kind.get("tour", 0)
    returns = snap.system_calls_by_kind.get("return", 0)
    print("leader election (all nodes start):")
    print(f"  elected leader    : node {leader} (every node knows it)")
    print(f"  tour+return calls : {tours + returns}  (paper bound: 6n = {6 * net2.n})")
    print(f"  total system calls: {snap.system_calls}\n")

    # ------------------------------------------------------------------
    # 4. A globally sensitive function (Section 5) on a complete graph.
    # ------------------------------------------------------------------
    rows = []
    for P, C in [(1.0, 0.0), (1.0, 1.0), (1.0, 4.0)]:
        net3 = Network(topologies.complete(32), delays=FixedDelays(C, P))
        t_opt, tree = optimal_spanning_tree(net3, P, C)
        result = run_tree_aggregation(
            net3, tree, operator.add, {i: i for i in net3.nodes}
        )
        rows.append([P, C, float(t_opt), result.completion_time, result.result])
    print(format_table(
        ["P", "C", "predicted t", "measured t", "sum(0..31)"],
        rows,
        title="optimal-tree aggregation on K32 (measured == OT(t) theory):",
    ))


if __name__ == "__main__":
    main()
