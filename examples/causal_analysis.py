#!/usr/bin/env python3
"""Scenario: auditing a distributed computation for wasted software.

The paper's appendix (Theorem 6) proves optimal computations are
tree-based by identifying the *causal messages* of any run — those with
a happened-before path to the output — and observing that each node's
last causal message forms a spanning tree.

This example turns that proof into an audit tool.  We run a "chatty"
aggregation (a correct protocol that also acknowledges every partial
result — a realistic implementation habit), record every NCU
involvement, and then:

1. compute which messages were causal,
2. extract the last-causal spanning tree (Lemma A.3),
3. compare the chatty run's software bill against the tree-based
   algorithm over the extracted tree.

Run:  python examples/causal_analysis.py
"""

from __future__ import annotations

import operator

from repro import FixedDelays, Network, format_table, topologies
from repro.analysis.causality import (
    CausalityRecorder,
    compute_causal_messages,
    last_causal_tree,
)
from repro.core import TreeAggregation, optimal_spanning_tree, run_tree_aggregation
from repro.core.globalfn import ChattyTreeAggregation

N, P, C = 34, 1.0, 1.0


def main() -> None:
    print(__doc__)

    # ------------------------------------------------------------------
    # Record a chatty run.
    # ------------------------------------------------------------------
    net = Network(topologies.complete(N), delays=FixedDelays(C, P))
    t_opt, tree = optimal_spanning_tree(net, P, C)
    recorder = CausalityRecorder()
    inputs = {i: i * 7 % 23 for i in net.nodes}
    net.attach(
        recorder.wrap(
            lambda api: ChattyTreeAggregation(
                api, tree=tree, op=operator.add, inputs=inputs, ids=net.id_lookup
            )
        )
    )
    net.start()
    net.run_to_quiescence()
    chatty_calls = net.metrics.system_calls
    chatty_time = net.output(tree.root, "completed_at")

    log = recorder.log
    causal = compute_causal_messages(log, tree.root)
    total = len(log.send_event)
    print(f"chatty run on K{N} (C={C}, P={P}):")
    print(f"  messages sent      : {total}")
    print(f"  causal messages    : {len(causal)} "
          f"({total - len(causal)} pure waste by the appendix's definition)")
    print(f"  system calls       : {chatty_calls}")
    print(f"  completion time    : {chatty_time:.0f}\n")

    # ------------------------------------------------------------------
    # Extract the Lemma A.3 tree and re-run lean.
    # ------------------------------------------------------------------
    extracted = last_causal_tree(log, tree.root)
    same = extracted.parent == dict(tree.parent)
    print(f"last-causal tree extracted: spans {len(extracted)} nodes, "
          f"equals the underlying optimal tree: {same}\n")

    net2 = Network(topologies.complete(N), delays=FixedDelays(C, P))
    lean = run_tree_aggregation(net2, extracted, operator.add, inputs)
    rows = [
        ["chatty (with ACKs)", total, chatty_calls, f"{chatty_time:.0f}"],
        ["tree-based over extracted tree", N - 1, lean.system_calls,
         f"{lean.completion_time:.0f}"],
        ["theory optimum OT(t)", N - 1, 2 * N - 1, f"{float(t_opt):.0f}"],
    ]
    print(format_table(
        ["algorithm", "messages", "system calls", "time"],
        rows,
        title="the audit's verdict (same result, half the messages):",
    ))
    assert lean.result == sum(inputs.values())
    print("\nLemma A.3, numerically: the tree-based algorithm over the "
          "extracted tree\nis never slower than the audited run — here "
          f"{lean.completion_time:.0f} <= {chatty_time:.0f}.")


if __name__ == "__main__":
    main()
